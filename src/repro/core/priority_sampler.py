"""Algorithm 1 — the GPS(m) family of graph priority samplers.

Each arriving edge ``k`` gets a weight ``w(k) = W(k, K̂)`` (computed against
the reservoir *before* the edge is admitted), an independent uniform
``u(k) ~ Uni(0, 1]`` and the priority ``r(k) = w(k)/u(k)``.  The edge is
provisionally included; when the reservoir exceeds its capacity ``m`` the
lowest-priority edge is evicted and the threshold ``z*`` becomes the
largest evicted priority seen so far.  At any point, the conditional
(Horvitz–Thompson) inclusion probability of a retained edge is
``p(k) = min{1, w(k)/z*}`` (procedure GPSNormalize).

Properties implemented and tested:

* S1 fixed-size sample: |K̂_t| = min(t, m);
* S2 unbiased subgraph estimation (via :mod:`repro.core.post_stream` and
  :mod:`repro.core.in_stream`);
* S3 weighted sampling via pluggable :mod:`repro.core.weights`;
* S4 update cost O(log m) heap work + the weight-function cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.core.records import EdgeRecord
from repro.core.reservoir import SampledGraph
from repro.core.weights import TriangleWeight, WeightFunction
from repro.graph.edge import EdgeKey, Node, canonical_edge, is_self_loop
from repro.heap.binary_heap import IndexedMinHeap


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of processing one stream arrival.

    ``record`` is the arriving edge's record (None for skipped arrivals),
    ``kept`` says whether it survived the provisional-inclusion step, and
    ``evicted`` is the record pushed out of the reservoir, if any (it can
    be the arriving record itself, in which case ``kept`` is False).
    """

    record: Optional[EdgeRecord]
    kept: bool
    evicted: Optional[EdgeRecord]
    skipped: bool = False

    @property
    def changed_sample(self) -> bool:
        return self.kept or self.evicted is not None


class GraphPrioritySampler:
    """GPS(m): one-pass fixed-size weighted edge sampling (Algorithm 1).

    Parameters
    ----------
    capacity:
        Reservoir capacity ``m`` (> 0).
    weight_fn:
        ``W(k, K̂)``; defaults to the paper's triangle-optimal
        ``9·|△̂(k)| + 1``.
    seed:
        Seed for the uniforms ``u(k)``.  Two samplers with the same seed,
        weight function and input stream select identical samples — the
        paper's shared-seed protocol for comparing post- vs in-stream
        estimation on the same sample.

    Examples
    --------
    >>> sampler = GraphPrioritySampler(capacity=2, seed=7)
    >>> for edge in [(1, 2), (2, 3), (1, 3), (3, 4)]:
    ...     _ = sampler.process(*edge)
    >>> sampler.sample_size
    2
    """

    __slots__ = (
        "_capacity",
        "_weight_fn",
        "_rng",
        "_heap",
        "_sample",
        "_threshold",
        "_arrivals",
        "_duplicates",
        "_self_loops",
    )

    def __init__(
        self,
        capacity: int,
        weight_fn: Optional[WeightFunction] = None,
        seed: Optional[int] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._weight_fn: WeightFunction = weight_fn or TriangleWeight()
        self._rng = random.Random(seed)
        self._heap = IndexedMinHeap()
        self._sample = SampledGraph()
        self._threshold = 0.0
        self._arrivals = 0
        self._duplicates = 0
        self._self_loops = 0

    # ------------------------------------------------------------------
    # Stream processing (procedure GPSUpdate)
    # ------------------------------------------------------------------
    def process(self, u: Node, v: Node) -> UpdateResult:
        """Process one arriving edge; returns what happened to the sample.

        The overflow step is a single fused admit-or-evict
        (:meth:`~repro.heap.binary_heap.IndexedMinHeap.pushpop`): an
        arriving edge that bounces straight out never touches the
        adjacency structure, and a replacement costs one O(log m) sift
        instead of a push plus a pop.
        """
        if is_self_loop(u, v):
            self._self_loops += 1
            return UpdateResult(record=None, kept=False, evicted=None, skipped=True)
        if self._sample.has_edge(u, v):
            # The stream model assumes unique edges; a duplicate of a
            # *sampled* edge would corrupt HT accounting, so it is dropped.
            self._duplicates += 1
            return UpdateResult(record=None, kept=False, evicted=None, skipped=True)

        self._arrivals += 1
        weight = self._weight_fn(u, v, self._sample)
        if not weight > 0.0:
            raise ValueError(f"weight function returned non-positive {weight!r}")
        uniform = 1.0 - self._rng.random()  # Uni(0, 1]
        record = EdgeRecord(
            u, v, weight=weight, priority=weight / uniform, arrival=self._arrivals
        )

        if len(self._heap) < self._capacity:
            self._sample.add(record)
            self._heap.push(record)
            return UpdateResult(record=record, kept=True, evicted=None)

        # Provisional inclusion fused with the eviction of the lowest
        # priority of the m+1 candidates.
        evicted = self._heap.pushpop(record)
        if evicted.priority > self._threshold:
            self._threshold = evicted.priority
        if evicted is record:
            return UpdateResult(record=record, kept=False, evicted=record)
        self._sample.remove(evicted)
        self._sample.add(record)
        return UpdateResult(record=record, kept=True, evicted=evicted)

    def process_many(self, edges: Iterable[Tuple[Node, Node]]) -> int:
        """Feed a batch of arrivals through the fused update loop.

        Semantically identical to calling :meth:`process` per edge (the
        uniforms are drawn in the same order, so shared-seed samples are
        bit-for-bit the same) but with the attribute lookups hoisted out
        of the per-edge loop.  Returns the number of edges consumed from
        ``edges`` (including skipped self-loops/duplicates).
        """
        sample = self._sample
        heap = self._heap
        weight_fn = self._weight_fn
        rand = self._rng.random
        capacity = self._capacity
        has_edge = sample.has_edge
        sample_add = sample.add
        sample_remove = sample.remove
        push = heap.push
        pushpop = heap.pushpop
        consumed = 0
        arrivals = self._arrivals
        threshold = self._threshold
        try:
            for u, v in edges:
                consumed += 1
                if u == v:
                    self._self_loops += 1
                    continue
                if has_edge(u, v):
                    self._duplicates += 1
                    continue
                arrivals += 1
                weight = weight_fn(u, v, sample)
                if not weight > 0.0:
                    raise ValueError(
                        f"weight function returned non-positive {weight!r}"
                    )
                record = EdgeRecord(
                    u, v, weight=weight, priority=weight / (1.0 - rand()),
                    arrival=arrivals,
                )
                if len(heap) < capacity:
                    sample_add(record)
                    push(record)
                    continue
                evicted = pushpop(record)
                if evicted.priority > threshold:
                    threshold = evicted.priority
                if evicted is not record:
                    sample_remove(evicted)
                    sample_add(record)
        finally:
            self._arrivals = arrivals
            self._threshold = threshold
        return consumed

    def process_stream(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        """Feed a whole stream through the sampler."""
        self.process_many(edges)

    # ------------------------------------------------------------------
    # Sample access and HT normalisation (procedure GPSNormalize)
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def sample(self) -> SampledGraph:
        """The sampled graph K̂ (live view)."""
        return self._sample

    @property
    def sample_size(self) -> int:
        return self._sample.num_edges

    @property
    def threshold(self) -> float:
        """z*: the largest priority evicted so far (0 before overflow)."""
        return self._threshold

    @property
    def stream_position(self) -> int:
        """Number of unique, loop-free arrivals processed."""
        return self._arrivals

    @property
    def duplicates_skipped(self) -> int:
        return self._duplicates

    @property
    def self_loops_skipped(self) -> int:
        return self._self_loops

    def records(self) -> Iterator[EdgeRecord]:
        """Records of all currently sampled edges."""
        return self._sample.records()

    def inclusion_probability(self, record: EdgeRecord) -> float:
        """Conditional HT probability ``min{1, w/z*}`` of ``record``."""
        return record.inclusion_probability(self._threshold)

    def edge_probability(self, u: Node, v: Node) -> float:
        """HT probability of a sampled edge, or 0.0 when not in the sample."""
        record = self._sample.record(u, v)
        if record is None:
            return 0.0
        return record.inclusion_probability(self._threshold)

    def normalized_probabilities(self) -> Dict[EdgeKey, float]:
        """GPSNormalize: canonical edge key → min{1, w/z*} for the sample."""
        threshold = self._threshold
        return {
            record.key: record.inclusion_probability(threshold)
            for record in self._sample.records()
        }

    def sampled_edges(self) -> Iterator[EdgeKey]:
        for record in self._sample.records():
            yield record.key

    def contains_edge(self, u: Node, v: Node) -> bool:
        return self._sample.has_edge(u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphPrioritySampler(m={self._capacity}, t={self._arrivals}, "
            f"|K̂|={self.sample_size}, z*={self._threshold:.4g})"
        )


def priority_of(weight: float, uniform: float) -> float:
    """The GPS priority ``r = w/u`` (exposed for tests and baselines)."""
    if not 0.0 < uniform <= 1.0:
        raise ValueError("uniform variate must lie in (0, 1]")
    if weight <= 0.0:
        raise ValueError("weight must be positive")
    return weight / uniform


__all__ = [
    "GraphPrioritySampler",
    "UpdateResult",
    "canonical_edge",
    "priority_of",
]
