"""The sampled graph K̂: adjacency view over reservoir edge records.

:class:`SampledGraph` maintains ``node → {neighbour → EdgeRecord}`` so the
weight functions and both estimation algorithms can do their local
neighbourhood work at the costs the paper analyses:

* triangles an arriving edge closes in the sample — O(min sampled degree)
  (property S4);
* enumeration of sampled triangles/wedges through an edge — the inner
  loops of Algorithms 2 and 3.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.records import EdgeRecord
from repro.graph.edge import Node


class SampledGraph:
    """Adjacency structure over the current reservoir contents."""

    __slots__ = ("_adj", "_num_edges")

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, EdgeRecord]] = {}
        self._num_edges = 0

    @classmethod
    def from_adjacency(
        cls, adj: Dict[Node, Dict[Node, EdgeRecord]], num_edges: int
    ) -> "SampledGraph":
        """Wrap a prebuilt ``node → {neighbour → record}`` adjacency.

        The caller owns the invariants (symmetry, one shared record per
        edge, no empty inner dicts) *and the dict iteration orders* —
        this is how the compact core materialises an object-core view
        with bit-identical traversal order
        (:meth:`repro.core.compact.CompactSample.materialize`).
        """
        graph = cls()
        graph._adj = adj
        graph._num_edges = num_edges
        return graph

    # ------------------------------------------------------------------
    # Mutation (driven by the sampler)
    # ------------------------------------------------------------------
    def add(self, record: EdgeRecord) -> None:
        """Insert ``record``; endpoints must not already be connected."""
        u, v = record.u, record.v
        nbrs_u = self._adj.setdefault(u, {})
        if v in nbrs_u:
            raise ValueError(f"edge ({u!r}, {v!r}) already sampled")
        nbrs_u[v] = record
        self._adj.setdefault(v, {})[u] = record
        self._num_edges += 1

    def remove(self, record: EdgeRecord) -> None:
        """Evict ``record``; isolated endpoints are dropped entirely."""
        u, v = record.u, record.v
        try:
            del self._adj[u][v]
            del self._adj[v][u]
        except KeyError:
            raise KeyError(f"edge ({u!r}, {v!r}) not in sample") from None
        if not self._adj[u]:
            del self._adj[u]
        if not self._adj[v]:
            del self._adj[v]
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def has_edge(self, u: Node, v: Node) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def record(self, u: Node, v: Node) -> Optional[EdgeRecord]:
        nbrs = self._adj.get(u)
        if nbrs is None:
            return None
        return nbrs.get(v)

    def degree(self, v: Node) -> int:
        return len(self._adj.get(v, ()))

    def neighbors(self, v: Node) -> Dict[Node, EdgeRecord]:
        """Neighbour → record map of ``v`` (live view; do not mutate)."""
        return self._adj.get(v, _EMPTY)

    def records(self) -> Iterator[EdgeRecord]:
        """Each sampled edge record exactly once."""
        seen_at_u = set()
        for u, nbrs in self._adj.items():
            seen_at_u.add(u)
            for v, record in nbrs.items():
                if v not in seen_at_u:
                    yield record

    def common_neighbor_count(self, u: Node, v: Node) -> int:
        """|Γ̂(u) ∩ Γ̂(v)| — triangles edge {u, v} closes in the sample.

        This is the triangle-weight computation of Sec. 3.2 (S4), done by
        scanning the smaller sampled neighbourhood.
        """
        nbrs_u = self._adj.get(u, _EMPTY)
        nbrs_v = self._adj.get(v, _EMPTY)
        if len(nbrs_u) > len(nbrs_v):
            nbrs_u, nbrs_v = nbrs_v, nbrs_u
        return sum(1 for w in nbrs_u if w in nbrs_v)

    def triangles_with(
        self, u: Node, v: Node
    ) -> Iterator[Tuple[Node, EdgeRecord, EdgeRecord]]:
        """Yield ``(w, record(u,w), record(v,w))`` for sampled triangles.

        Enumerates triangles completed by the (not necessarily sampled)
        edge ``{u, v}`` against the sample: common sampled neighbours
        ``w``, scanning the smaller neighbourhood.
        """
        nbrs_u = self._adj.get(u, _EMPTY)
        nbrs_v = self._adj.get(v, _EMPTY)
        if len(nbrs_u) <= len(nbrs_v):
            for w, rec_uw in nbrs_u.items():
                rec_vw = nbrs_v.get(w)
                if rec_vw is not None:
                    yield w, rec_uw, rec_vw
        else:
            for w, rec_vw in nbrs_v.items():
                rec_uw = nbrs_u.get(w)
                if rec_uw is not None:
                    yield w, rec_uw, rec_vw

    def incident_records(
        self, v: Node, exclude: Optional[Node] = None
    ) -> Iterator[EdgeRecord]:
        """Records of sampled edges incident to ``v`` (optionally skipping
        the neighbour ``exclude`` — used to avoid pairing an edge with
        itself when enumerating wedges through it)."""
        for w, record in self._adj.get(v, _EMPTY).items():
            if w != exclude:
                yield record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SampledGraph(nodes={self.num_nodes}, edges={self.num_edges})"


_EMPTY: Dict[Node, EdgeRecord] = {}


def snapshot_view(sample) -> "SampledGraph":
    """A traversal-stable, allocation-cheap view for retrospective passes.

    Object-core :class:`SampledGraph` instances come back as-is; compact
    views are materialised once
    (:meth:`repro.core.compact.CompactSample.materialize`), so estimator
    loops that call ``neighbors``/``records`` per sampled edge pay O(m)
    record construction up front instead of allocating on every call.
    Iteration orders are identical either way, keeping the retrospective
    estimates bit-exact across cores.
    """
    materialize = getattr(sample, "materialize", None)
    return materialize() if materialize is not None else sample
