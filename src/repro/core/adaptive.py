"""Adaptive-weight sampling schemes (the paper's stated future work).

The conclusion of the paper: "In future work, we aim to extend the
proposed approach to adaptive-weight sampling schemes."  Theorem 1 already
licenses this: the only condition on the weight ``w_i`` is that it is
measurable with respect to the history before arrival ``i`` — so weights
may depend on *anything observed so far* (not just the reservoir
topology), and every HT estimate stays unbiased.

:class:`AdaptiveTriangleWeight` implements a concrete scheme on top of the
paper's fixed ``9·|△̂(k)| + 1``: it tracks the recent fraction φ of
arrivals that closed at least one sampled triangle (an exponential moving
average) and scales the boost coefficient as ``boost_target / max(φ, φ_min)``.

* When triangle-closing arrivals are *rare* (sparse graphs, early stream),
  each one receives a larger boost, devoting reservoir capacity to the
  scarce signal.
* When they are *common* (dense clustered graphs, late stream, large m),
  the boost shrinks towards ``boost_target``, preventing the reservoir
  from starving on novel edges it will need as triangle anchors later.

The scheme keeps the IPPS intuition of Sec. 3.5 (weights proportional to
the number of target subgraphs completed) while making the
exploration/exploitation ratio self-tuning instead of hard-coded.
"""

from __future__ import annotations

from repro.core.reservoir import SampledGraph
from repro.graph.edge import Node


class AdaptiveTriangleWeight:
    """Triangle-targeted weight with a self-tuning boost coefficient.

    Parameters
    ----------
    boost_target:
        The desired boost when triangle closures are ubiquitous (φ → 1);
        the paper's fixed scheme corresponds to a constant boost of 9.
    smoothing:
        EMA factor for the closure-rate tracker (0 < smoothing ≤ 1);
        smaller = slower adaptation.
    min_rate:
        Floor for the tracked rate, capping the boost at
        ``boost_target / min_rate`` so early noise cannot produce
        unbounded weights.
    default:
        Weight of arrivals that close no sampled triangle (> 0 so every
        edge remains sampleable — the paper's "default weight").
    """

    __slots__ = ("boost_target", "smoothing", "min_rate", "default", "_rate")

    def __init__(
        self,
        boost_target: float = 9.0,
        smoothing: float = 0.05,
        min_rate: float = 0.01,
        default: float = 1.0,
    ) -> None:
        if boost_target <= 0 or default <= 0:
            raise ValueError("boost_target and default must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if not 0.0 < min_rate <= 1.0:
            raise ValueError("min_rate must be in (0, 1]")
        self.boost_target = boost_target
        self.smoothing = smoothing
        self.min_rate = min_rate
        self.default = default
        self._rate = min_rate  # optimistic start: strong early boosts

    def __call__(self, u: Node, v: Node, sample: SampledGraph) -> float:
        closed = sample.common_neighbor_count(u, v)
        # Update the closure-rate EMA *before* computing the weight: the
        # weight then depends only on arrivals up to and including the
        # current one's observable topology, satisfying Theorem 1's
        # measurability condition.
        observation = 1.0 if closed else 0.0
        self._rate += self.smoothing * (observation - self._rate)
        if not closed:
            return self.default
        boost = self.boost_target / max(self._rate, self.min_rate)
        return boost * closed + self.default

    @property
    def closure_rate(self) -> float:
        """Current EMA of the fraction of triangle-closing arrivals."""
        return self._rate

    @property
    def current_boost(self) -> float:
        """The boost a triangle-closing arrival would receive right now."""
        return self.boost_target / max(self._rate, self.min_rate)

    def __repr__(self) -> str:
        return (
            f"AdaptiveTriangleWeight(boost_target={self.boost_target!r}, "
            f"smoothing={self.smoothing!r}, min_rate={self.min_rate!r}, "
            f"default={self.default!r})"
        )
