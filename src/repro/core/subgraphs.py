"""Generalised post-stream subgraph estimation: k-cliques and k-stars.

The paper's framework estimates "the total weight of arbitrary graph
subsets (triangles, cliques, stars, subgraphs with particular attributes)"
from one GPS reference sample.  Triangles and wedges have the dedicated
Algorithm 2; this module supplies the general mechanism for two further
motif families:

* **k-cliques** (:class:`CliqueEstimator`) — enumerated in the sampled
  graph with a pivot-free ordered expansion, estimated with the product
  estimator ``Ŝ_J = Π 1/p_e`` (Theorem 2).  The variance estimate includes
  the pairwise covariance ``Ŝ_{J1∪J2}(Ŝ_{J1∩J2} − 1)`` over clique pairs
  sharing at least one sampled edge (Theorem 3), found via an edge →
  cliques index.
* **k-stars** (:class:`StarEstimator`) — a k-star is a centre plus k
  incident edges; the HT total over all C(deĝ(v), k) edge subsets is the
  k-th elementary symmetric polynomial of the incident inverse
  probabilities, evaluated per centre in O(deĝ(v)·k) without enumerating
  subsets.  Variance: exact diagonal via symmetric polynomials; pairwise
  covariance terms (non-negative by Theorem 3(ii)) are omitted, so the
  reported variance is a documented lower bound.

Estimates are exact whenever the reservoir never overflowed (all p = 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.core.estimates import SubgraphEstimate
from repro.core.priority_sampler import GraphPrioritySampler
from repro.core.reservoir import snapshot_view
from repro.core.records import EdgeRecord
from repro.graph.edge import EdgeKey, Node


@dataclass(frozen=True)
class SampledClique:
    """A fully sampled k-clique with its HT estimate."""

    nodes: Tuple[Node, ...]
    estimate: float


class CliqueEstimator:
    """Post-stream k-clique counting from a GPS sample (k ≥ 3)."""

    __slots__ = ("_sampler", "size")

    def __init__(self, sampler: GraphPrioritySampler, size: int = 4) -> None:
        if size < 3:
            raise ValueError("clique size must be at least 3")
        self._sampler = sampler
        self.size = size

    def enumerate(self) -> List[SampledClique]:
        """All k-cliques fully contained in the sample, with HT estimates."""
        sample = snapshot_view(self._sampler.sample)
        threshold = self._sampler.threshold
        order: Dict[Node, int] = {}
        nodes = sorted(
            (v for v in _sample_nodes(sample)),
            key=lambda v: (sample.degree(v), repr(v)),
        )
        for idx, v in enumerate(nodes):
            order[v] = idx

        cliques: List[SampledClique] = []

        def extend(members: List[Node], candidates: List[Node]) -> None:
            if len(members) == self.size:
                cliques.append(
                    SampledClique(
                        nodes=tuple(members),
                        estimate=_clique_estimate(sample, members, threshold),
                    )
                )
                return
            for idx, candidate in enumerate(candidates):
                nbrs = sample.neighbors(candidate)
                remaining = [c for c in candidates[idx + 1:] if c in nbrs]
                extend(members + [candidate], remaining)

        for v in nodes:
            higher = [
                w for w in sample.neighbors(v) if order[w] > order[v]
            ]
            higher.sort(key=order.__getitem__)
            extend([v], higher)
        return cliques

    def estimate(self) -> SubgraphEstimate:
        """Unbiased k-clique count estimate with covariance-aware variance."""
        sample = snapshot_view(self._sampler.sample)
        threshold = self._sampler.threshold
        cliques = self.enumerate()
        total = sum(c.estimate for c in cliques)
        variance = sum(c.estimate * (c.estimate - 1.0) for c in cliques)

        # Pairwise covariance over cliques sharing >= 1 edge (Theorem 3):
        # index cliques by edge, collect candidate pairs, evaluate
        # Ŝ_{J1∪J2}(Ŝ_{J1∩J2} − 1) once per unordered pair.
        by_edge: Dict[EdgeKey, List[int]] = {}
        edge_sets: List[Dict[EdgeKey, float]] = []
        for idx, clique in enumerate(cliques):
            probs = _clique_edge_probs(sample, clique.nodes, threshold)
            edge_sets.append(probs)
            for key in probs:
                by_edge.setdefault(key, []).append(idx)
        seen_pairs = set()
        for indices in by_edge.values():
            if len(indices) < 2:
                continue
            for a, b in combinations(indices, 2):
                if (a, b) in seen_pairs:
                    continue
                seen_pairs.add((a, b))
                variance += 2.0 * _pair_covariance(edge_sets[a], edge_sets[b])
        return SubgraphEstimate(value=total, variance=variance)


class StarEstimator:
    """Post-stream k-star counting (centre + k incident edges)."""

    __slots__ = ("_sampler", "leaves")

    def __init__(self, sampler: GraphPrioritySampler, leaves: int = 3) -> None:
        if leaves < 1:
            raise ValueError("a star needs at least one leaf edge")
        self._sampler = sampler
        self.leaves = leaves

    def estimate(self) -> SubgraphEstimate:
        """HT k-star count; variance is the diagonal lower bound.

        For each centre ``v`` with sampled incident inverse probabilities
        ``x_1..x_d``, the HT total over all C(d, k) stars is ``e_k(x)`` and
        the diagonal variance is ``e_k(x²) − e_k(x)`` [since
        Σ_S Ŝ_S(Ŝ_S−1) = Σ_S Π x² − Σ_S Π x].
        """
        sample = snapshot_view(self._sampler.sample)
        threshold = self._sampler.threshold
        total = 0.0
        variance = 0.0
        for v in _sample_nodes(sample):
            inv = [
                1.0 / rec.inclusion_probability(threshold)
                for rec in sample.incident_records(v)
            ]
            if len(inv) < self.leaves:
                continue
            e_x = _elementary_symmetric(inv, self.leaves)
            e_x2 = _elementary_symmetric([x * x for x in inv], self.leaves)
            total += e_x
            variance += e_x2 - e_x
        return SubgraphEstimate(value=total, variance=variance)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _sample_nodes(sample) -> Sequence[Node]:
    nodes = set()
    for record in sample.records():
        nodes.add(record.u)
        nodes.add(record.v)
    return sorted(nodes, key=repr)


def _clique_edge_probs(
    sample, members: Sequence[Node], threshold: float
) -> Dict[EdgeKey, float]:
    probs: Dict[EdgeKey, float] = {}
    for a, b in combinations(members, 2):
        record: EdgeRecord = sample.record(a, b)
        probs[record.key] = record.inclusion_probability(threshold)
    return probs


def _clique_estimate(sample, members: Sequence[Node], threshold: float) -> float:
    value = 1.0
    for a, b in combinations(members, 2):
        record = sample.record(a, b)
        value *= 1.0 / record.inclusion_probability(threshold)
    return value


def _pair_covariance(
    first: Dict[EdgeKey, float], second: Dict[EdgeKey, float]
) -> float:
    """Ĉ = Ŝ_{J1∪J2}(Ŝ_{J1∩J2} − 1) for two edge-probability maps."""
    shared = first.keys() & second.keys()
    if not shared:
        return 0.0
    union = 1.0
    for key, p in first.items():
        union *= 1.0 / p
    for key, p in second.items():
        if key not in first:
            union *= 1.0 / p
    # Iterate the insertion-ordered dict, not `shared`: set order is
    # hash order, and the float product must not depend on it.
    intersection = 1.0
    for key, p in first.items():
        if key in second:
            intersection *= 1.0 / p
    return union * (intersection - 1.0)


def _elementary_symmetric(values: Sequence[float], k: int) -> float:
    """e_k(values) via the standard O(n·k) dynamic programme."""
    if k > len(values):
        return 0.0
    table = [0.0] * (k + 1)
    table[0] = 1.0
    for x in values:
        upper = min(k, len(values))
        for j in range(upper, 0, -1):
            table[j] += x * table[j - 1]
    return table[k]
