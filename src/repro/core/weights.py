"""The weight-function family ``W(k, K̂)`` (paper Sec. 3.2, S3 and Sec. 3.5).

GPS turns estimation objectives into edge-sampling weights: the weight of
an arriving edge may depend on the edge itself (attributes, endpoints) and
on the topology of the current reservoir.  The paper's variance-cost
analysis (Sec. 3.5) shows that to minimise the incremental variance of a
target subgraph count, the weight should be (proportional to) the number of
target subgraphs the arriving edge completes against the sample, plus a
default weight so novel edges can still be picked up.

Concrete members:

* :class:`UniformWeight` — W ≡ 1: GPS degenerates to classic uniform
  reservoir sampling (paper remark after Algorithm 1).
* :class:`TriangleWeight` — W = coef·|△̂(k)| + default, the paper's choice
  ``9·|△̂(k)| + 1`` for triangle counting (Sec. 4).
* :class:`WedgeWeight` — W = coef·(sampled degree sum) + default, the
  analogous choice when wedges are the target class.
* :class:`AttributeWeight` — intrinsic (topology-free) weights from a user
  callable: node/edge attributes, byte counts, relationship types …
* :class:`LinearCombinationWeight` — non-negative combinations of the
  above, for multi-objective sampling.

All weight functions must return a strictly positive, finite value so that
priorities ``w/u`` are well defined.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, Tuple

from repro.core.reservoir import SampledGraph
from repro.graph.edge import Node


class WeightFunction(Protocol):
    """Structural type of ``W(k, K̂)``: (u, v, sample) → weight > 0."""

    def __call__(self, u: Node, v: Node, sample: SampledGraph) -> float: ...


class UniformWeight:
    """W ≡ constant: uniform (classic reservoir) sampling."""

    __slots__ = ("constant",)

    def __init__(self, constant: float = 1.0) -> None:
        if constant <= 0:
            raise ValueError("weight constant must be positive")
        self.constant = constant

    def __call__(self, u: Node, v: Node, sample: SampledGraph) -> float:
        return self.constant

    def __repr__(self) -> str:
        return f"UniformWeight({self.constant!r})"


class TriangleWeight:
    """W(k, K̂) = coef·|△̂(k)| + default — variance-optimal for triangles.

    ``|△̂(k)|`` is the number of triangles the arriving edge closes against
    the current sample, i.e. ``|Γ̂(v1) ∩ Γ̂(v2)|``.  Paper default:
    coef = 9, default = 1 (Sec. 4, "Algorithm Description").
    """

    __slots__ = ("coef", "default")

    def __init__(self, coef: float = 9.0, default: float = 1.0) -> None:
        if coef < 0 or default <= 0:
            raise ValueError("need coef >= 0 and default > 0")
        self.coef = coef
        self.default = default

    def __call__(self, u: Node, v: Node, sample: SampledGraph) -> float:
        return self.coef * sample.common_neighbor_count(u, v) + self.default

    def __repr__(self) -> str:
        return f"TriangleWeight(coef={self.coef!r}, default={self.default!r})"


class WedgeWeight:
    """W(k, K̂) = coef·(deĝ(v1) + deĝ(v2)) + default — wedge-targeted.

    The number of wedges an arriving edge completes against the sample is
    the number of sampled edges adjacent to it, i.e. the sum of the
    endpoints' sampled degrees.
    """

    __slots__ = ("coef", "default")

    def __init__(self, coef: float = 1.0, default: float = 1.0) -> None:
        if coef < 0 or default <= 0:
            raise ValueError("need coef >= 0 and default > 0")
        self.coef = coef
        self.default = default

    def __call__(self, u: Node, v: Node, sample: SampledGraph) -> float:
        return self.coef * (sample.degree(u) + sample.degree(v)) + self.default

    def __repr__(self) -> str:
        return f"WedgeWeight(coef={self.coef!r}, default={self.default!r})"


class AttributeWeight:
    """Intrinsic weights from a user callable ``fn(u, v) → float > 0``.

    Expresses the paper's auxiliary-variable use case (S3): user age,
    relationship type, bytes on a communication link, …  The callable sees
    only the edge, not the sample.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Node, Node], float]) -> None:
        self.fn = fn

    def __call__(self, u: Node, v: Node, sample: SampledGraph) -> float:
        weight = float(self.fn(u, v))
        if weight <= 0:
            raise ValueError(f"attribute weight must be positive, got {weight}")
        return weight

    def __repr__(self) -> str:
        return f"AttributeWeight({self.fn!r})"


class LinearCombinationWeight:
    """Σ coef_i · W_i(k, K̂): blend several objectives into one sample.

    Example: weight triangles and wedges simultaneously so a single
    reference sample serves both count queries (the paper's "general
    samples ... estimate various properties simultaneously").
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[Tuple[float, WeightFunction]]) -> None:
        if not terms:
            raise ValueError("need at least one (coefficient, weight) term")
        for coef, _fn in terms:
            if coef < 0:
                raise ValueError("coefficients must be non-negative")
        if not any(coef > 0 for coef, _fn in terms):
            # An all-zero combination would only fail mid-stream with a
            # cryptic "non-positive weight" error; reject it up front.
            raise ValueError("at least one coefficient must be positive")
        self.terms = list(terms)

    def __call__(self, u: Node, v: Node, sample: SampledGraph) -> float:
        return sum(coef * fn(u, v, sample) for coef, fn in self.terms)

    def __repr__(self) -> str:
        return f"LinearCombinationWeight({self.terms!r})"


def is_label_free(weight_fn: "WeightFunction") -> bool:
    """Whether ``weight_fn`` reads only sample *topology*, never labels.

    Label-free weights are invariant under node relabelling, which is
    what licenses the interned (dense-``int32``) dispatch of the
    shared-memory replication fan-out: workers may stream interned ids
    instead of original labels and every estimate stays bit-identical.
    :class:`AttributeWeight` (and any unrecognised custom callable) may
    inspect the labels themselves, so it conservatively disqualifies.

    >>> is_label_free(TriangleWeight())
    True
    >>> is_label_free(AttributeWeight(lambda u, v: 1.0))
    False
    """
    from repro.core.adaptive import AdaptiveTriangleWeight

    kind = type(weight_fn)
    if kind in (UniformWeight, TriangleWeight, WedgeWeight):
        return True
    if kind is AdaptiveTriangleWeight:
        return True
    if kind is LinearCombinationWeight:
        return all(is_label_free(fn) for _coef, fn in weight_fn.terms)
    return False
