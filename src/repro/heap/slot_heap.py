"""Index-based binary min-heap over reservoir *slots*.

The compact GPS core (:mod:`repro.core.compact`) stores each sampled
edge's fields in parallel slot-indexed arrays instead of boxed
:class:`~repro.core.records.EdgeRecord` objects.  This heap orders the
slot *indices* by priority, as ``(priority, slot)`` pairs on the C
implementation of :mod:`heapq`: where
:class:`~repro.heap.binary_heap.IndexedMinHeap` sifts in Python with one
``item.priority`` attribute lookup per comparison, every sift here runs
inside ``heappush``/``heapreplace`` at C speed.

The GPS overflow pattern never removes an arbitrary element — the
evicted edge is always the root, and the arriving edge reuses the
evicted slot — so the API is deliberately small: ``push`` during the
fill phase, root access, and :meth:`replace_root` for the fused
evict-and-admit step.  Exact priority ties are broken by the slot index
(the pair comparison's second component); the object core breaks such
ties by sift order instead, but two GPS priorities ``w/u`` drawn from
distinct uniforms collide with probability ~2⁻⁵³ per pair, so the cores
remain bit-identical on any real stream.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush, heapreplace
from typing import Iterator, List, Optional, Tuple


class SlotMinHeap:
    """Binary min-heap of ``(priority, slot)`` pairs (C-speed sifts).

    Examples
    --------
    >>> heap = SlotMinHeap()
    >>> for slot, priority in enumerate([5.0, 1.0, 3.0]):
    ...     heap.push(slot, priority)
    >>> heap.peek(), heap.min_priority()
    (1, 1.0)
    >>> heap.replace_root(1, 9.0)  # reuse the evicted slot
    (1.0, 1)
    >>> heap.peek()
    2
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[int]:
        """Iterate slots in arbitrary (array) order."""
        for _priority, slot in self._heap:
            yield slot

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def push(self, slot: int, priority: float) -> None:
        """Insert ``slot`` with ``priority``; O(log n)."""
        heappush(self._heap, (priority, slot))

    def peek(self) -> int:
        """The minimum-priority slot (without removing it); O(1)."""
        if not self._heap:
            raise IndexError("peek from an empty heap")
        return self._heap[0][1]

    def min_priority(self) -> Optional[float]:
        """Priority of the root slot, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> int:
        """Remove and return the minimum-priority slot; O(log n)."""
        if not self._heap:
            raise IndexError("pop from an empty heap")
        return heappop(self._heap)[1]

    def replace_root(self, slot: int, priority: float) -> Tuple[float, int]:
        """Evict the root, insert ``(priority, slot)``; one O(log n) sift.

        Returns the evicted ``(priority, slot)`` pair.  This is the
        compact GPS eviction: the arriving edge overwrites the evicted
        slot's fields in place and takes over its heap entry.
        """
        if not self._heap:
            raise IndexError("replace_root on an empty heap")
        return heapreplace(self._heap, (priority, slot))

    def clear(self) -> None:
        self._heap.clear()

    # ------------------------------------------------------------------
    # Diagnostics (used by the test suite)
    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """Check the heap invariant; O(n)."""
        heap = self._heap
        for pos in range(len(heap)):
            child = 2 * pos + 1
            if child < len(heap) and heap[child] < heap[pos]:
                return False
            child += 1
            if child < len(heap) and heap[child] < heap[pos]:
                return False
        return True

    def rebuild(self, pairs) -> None:
        """Reset the heap to ``(priority, slot)`` pairs; O(n) heapify."""
        self._heap = list(pairs)
        heapify(self._heap)


__all__ = ["SlotMinHeap"]
