"""Array-backed binary min-heap with position tracking.

The heap stores arbitrary *items* that expose two attributes:

``priority``
    A comparable value (float).  The heap orders items so the smallest
    priority sits at the root.

``heap_pos``
    Managed by the heap: the item's current index in the backing array, or
    ``-1`` when the item is not in the heap.  Callers must not mutate it.

This mirrors the data structure described in the paper (Sec. 3.2,
"Implementation and data structure"): edges live in a standard array and
parent/child relations are implied by array positions, giving O(1) access to
the lowest-priority edge and O(log m) insertion/deletion.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Protocol


class HeapItem(Protocol):
    """Structural type for items managed by :class:`IndexedMinHeap`."""

    priority: float
    heap_pos: int


class IndexedMinHeap:
    """Binary min-heap keyed on ``item.priority`` with O(log n) removal.

    Examples
    --------
    >>> from repro.core.records import EdgeRecord
    >>> heap = IndexedMinHeap()
    >>> for pri in (5.0, 1.0, 3.0):
    ...     heap.push(EdgeRecord(0, 1, weight=1.0, priority=pri))
    >>> heap.peek().priority
    1.0
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: List[HeapItem] = []

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[HeapItem]:
        """Iterate items in arbitrary (array) order."""
        return iter(self._items)

    def __contains__(self, item: HeapItem) -> bool:
        pos = item.heap_pos
        return 0 <= pos < len(self._items) and self._items[pos] is item

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def push(self, item: HeapItem) -> None:
        """Insert ``item``; O(log n)."""
        if item in self:
            raise ValueError("item is already in the heap")
        self._items.append(item)
        item.heap_pos = len(self._items) - 1
        self._sift_up(item.heap_pos)

    def peek(self) -> HeapItem:
        """Return (without removing) the minimum-priority item; O(1)."""
        if not self._items:
            raise IndexError("peek from an empty heap")
        return self._items[0]

    def pop(self) -> HeapItem:
        """Remove and return the minimum-priority item; O(log n)."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        return self._remove_at(0)

    def remove(self, item: HeapItem) -> None:
        """Remove an arbitrary ``item`` from the heap; O(log n)."""
        if item not in self:
            raise ValueError("item is not in the heap")
        self._remove_at(item.heap_pos)

    def update_priority(self, item: HeapItem, priority: float) -> None:
        """Change ``item``'s priority and restore heap order; O(log n)."""
        if item not in self:
            raise ValueError("item is not in the heap")
        old = item.priority
        item.priority = priority
        if priority < old:
            self._sift_up(item.heap_pos)
        elif priority > old:
            self._sift_down(item.heap_pos)

    def pushpop(self, item: HeapItem) -> HeapItem:
        """Push ``item`` then pop the minimum, in one O(log n) operation.

        Returns the popped item (possibly ``item`` itself when it carries
        the smallest priority).  This is the GPS "provisional inclusion"
        step: admit the arriving edge, then discard whichever of the m+1
        edges now has the lowest priority.
        """
        if self._items and self._items[0].priority < item.priority:
            lowest = self._items[0]
            lowest.heap_pos = -1
            self._items[0] = item
            item.heap_pos = 0
            self._sift_down(0)
            return lowest
        item.heap_pos = -1
        return item

    def clear(self) -> None:
        for item in self._items:
            item.heap_pos = -1
        self._items.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _remove_at(self, pos: int) -> HeapItem:
        items = self._items
        removed = items[pos]
        removed.heap_pos = -1
        last = items.pop()
        if pos < len(items):
            items[pos] = last
            last.heap_pos = pos
            if last.priority < removed.priority:
                self._sift_up(pos)
            else:
                self._sift_down(pos)
        return removed

    def _sift_up(self, pos: int) -> None:
        items = self._items
        item = items[pos]
        while pos > 0:
            parent_pos = (pos - 1) >> 1
            parent = items[parent_pos]
            if item.priority >= parent.priority:
                break
            items[pos] = parent
            parent.heap_pos = pos
            pos = parent_pos
        items[pos] = item
        item.heap_pos = pos

    def _sift_down(self, pos: int) -> None:
        items = self._items
        size = len(items)
        item = items[pos]
        while True:
            child_pos = 2 * pos + 1
            if child_pos >= size:
                break
            right = child_pos + 1
            if right < size and items[right].priority < items[child_pos].priority:
                child_pos = right
            child = items[child_pos]
            if item.priority <= child.priority:
                break
            items[pos] = child
            child.heap_pos = pos
            pos = child_pos
        items[pos] = item
        item.heap_pos = pos

    # ------------------------------------------------------------------
    # Diagnostics (used by the test suite)
    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """Check the heap invariant and position map; O(n)."""
        items = self._items
        for pos, item in enumerate(items):
            if item.heap_pos != pos:
                return False
            child = 2 * pos + 1
            if child < len(items) and items[child].priority < item.priority:
                return False
            child += 1
            if child < len(items) and items[child].priority < item.priority:
                return False
        return True

    def min_priority(self) -> Optional[float]:
        """Priority of the root, or ``None`` when empty."""
        return self._items[0].priority if self._items else None
