"""Indexed binary min-heap used as the GPS priority queue.

The Graph Priority Sampling reservoir (paper Sec. 3.2) keeps the ``m``
highest-priority edges and needs O(1) access to the *lowest* priority item
plus O(log m) insertion and removal.  :class:`IndexedMinHeap` provides
exactly that, with position tracking so that arbitrary items can also be
removed or re-prioritised in O(log m).
"""

from repro.heap.binary_heap import HeapItem, IndexedMinHeap

__all__ = ["HeapItem", "IndexedMinHeap"]
