"""Horvitz–Thompson estimation helpers.

The HT (inverse-probability) estimator underlies every count estimate in
the paper: a sampled item with inclusion probability ``p`` contributes
``1/p`` to the estimated population total.  These helpers centralise the
algebra (with guards for degenerate probabilities) for use by the GPS
estimators and the baselines.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def inverse_probability(p: float) -> float:
    """``1/p`` with validation; the weight of one sampled item."""
    if not 0.0 < p <= 1.0:
        raise ValueError(f"inclusion probability must be in (0, 1], got {p}")
    return 1.0 / p


def ht_estimate(probabilities: Iterable[float]) -> float:
    """HT total: Σ 1/p_i over the *sampled* items."""
    return sum(inverse_probability(p) for p in probabilities)


def ht_single_variance_term(p: float) -> float:
    """Unbiased per-item variance term ``(1/p)·(1/p − 1)``.

    This is the paper's ``Ŝ(Ŝ−1)`` with ``Ŝ = 1/p`` for a single sampled
    item (Theorem 3(iii) specialised to |J| = 1).
    """
    inv = inverse_probability(p)
    return inv * (inv - 1.0)


def ht_variance_with_replacement(
    probabilities: Sequence[float],
) -> float:
    """Independent-sampling variance estimate: Σ (1/p_i)(1/p_i − 1).

    Ignores covariance terms; exact for independent per-item sampling
    (e.g. MASCOT), conservative-in-expectation otherwise.
    """
    return sum(ht_single_variance_term(p) for p in probabilities)


def product_estimate(probabilities: Iterable[float]) -> float:
    """Subgraph product estimator ``Π 1/p_i`` (paper Theorem 2)."""
    value = 1.0
    for p in probabilities:
        value *= inverse_probability(p)
    return value
