"""Welford running moments.

Used by the Monte-Carlo unbiasedness tests (mean over many independent
sampling runs must approach the exact count) and by benches that summarise
repeated measurements without storing them all.
"""

from __future__ import annotations

from math import sqrt


class RunningMoments:
    """Numerically stable running mean/variance (Welford's algorithm)."""

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n−1 denominator)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return sqrt(self.variance)

    @property
    def std_error(self) -> float:
        """Standard error of the mean."""
        if self._count == 0:
            raise ValueError("no observations")
        return self.std / sqrt(self._count)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no observations")
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return "RunningMoments(empty)"
        return (
            f"RunningMoments(n={self._count}, mean={self._mean:.6g}, "
            f"std={self.std:.6g})"
        )
