"""Delta-method variance for ratio estimators (paper Eq. 11).

The global clustering coefficient is estimated by the ratio
``α̂ = 3·N̂(△)/N̂(Λ)``.  The paper approximates its variance with a
first-order Taylor (delta-method) expansion:

    Var(N̂(△)/N̂(Λ)) ≈ Var(N̂(△))/N̂(Λ)²
                      + N̂(△)²·Var(N̂(Λ))/N̂(Λ)⁴
                      − 2·N̂(△)·Cov(N̂(△), N̂(Λ))/N̂(Λ)³
"""

from __future__ import annotations


def ratio_variance_delta(
    numerator: float,
    denominator: float,
    variance_numerator: float,
    variance_denominator: float,
    covariance: float = 0.0,
) -> float:
    """Delta-method variance of ``numerator / denominator``.

    Returns 0 when the denominator estimate is 0 (ratio undefined; callers
    treat the point estimate as 0 with no spread).  Negative inputs for the
    variances are clamped at 0; the result is clamped at 0 as well since a
    variance approximation below zero carries no information.
    """
    if denominator == 0:
        return 0.0
    variance_numerator = max(0.0, variance_numerator)
    variance_denominator = max(0.0, variance_denominator)
    d2 = denominator * denominator
    value = (
        variance_numerator / d2
        + (numerator * numerator) * variance_denominator / (d2 * d2)
        - 2.0 * numerator * covariance / (d2 * denominator)
    )
    return max(0.0, value)


def clustering_variance(
    triangles: float,
    wedges: float,
    variance_triangles: float,
    variance_wedges: float,
    covariance: float = 0.0,
) -> float:
    """Variance of α̂ = 3·N̂(△)/N̂(Λ) via the delta method (Eq. 11)."""
    return 9.0 * ratio_variance_delta(
        triangles, wedges, variance_triangles, variance_wedges, covariance
    )
