"""Variance composition: the delta method and pooled group moments.

Two families live here:

* the first-order Taylor (delta-method) variance for ratio estimators
  (paper Eq. 11) behind the global clustering coefficient
  ``α̂ = 3·N̂(△)/N̂(Λ)``:

      Var(N̂(△)/N̂(Λ)) ≈ Var(N̂(△))/N̂(Λ)²
                        + N̂(△)²·Var(N̂(Λ))/N̂(Λ)⁴
                        − 2·N̂(△)·Cov(N̂(△), N̂(Λ))/N̂(Λ)³

* pooled moments across groups of replicates
  (:func:`pooled_mean`/:func:`pooled_variance`), the merge math behind
  sharded studies: groups of possibly unequal size, each summarised by
  ``(count, mean, sample variance)``, combine into the exact mean and
  sample variance of the concatenated population.
"""

from __future__ import annotations

from typing import Sequence


def ratio_variance_delta(
    numerator: float,
    denominator: float,
    variance_numerator: float,
    variance_denominator: float,
    covariance: float = 0.0,
) -> float:
    """Delta-method variance of ``numerator / denominator``.

    Returns 0 when the denominator estimate is 0 (ratio undefined; callers
    treat the point estimate as 0 with no spread).  Negative inputs for the
    variances are clamped at 0; the result is clamped at 0 as well since a
    variance approximation below zero carries no information.
    """
    if denominator == 0:
        return 0.0
    variance_numerator = max(0.0, variance_numerator)
    variance_denominator = max(0.0, variance_denominator)
    d2 = denominator * denominator
    value = (
        variance_numerator / d2
        + (numerator * numerator) * variance_denominator / (d2 * d2)
        - 2.0 * numerator * covariance / (d2 * denominator)
    )
    return max(0.0, value)


def clustering_variance(
    triangles: float,
    wedges: float,
    variance_triangles: float,
    variance_wedges: float,
    covariance: float = 0.0,
) -> float:
    """Variance of α̂ = 3·N̂(△)/N̂(Λ) via the delta method (Eq. 11)."""
    return 9.0 * ratio_variance_delta(
        triangles, wedges, variance_triangles, variance_wedges, covariance
    )


def _check_groups(counts: Sequence[int], *series: Sequence[float]) -> None:
    for other in series:
        if len(other) != len(counts):
            raise ValueError(
                f"group series disagree on length: {len(counts)} counts vs "
                f"{len(other)} values"
            )
    for count in counts:
        if count < 0:
            raise ValueError(f"group counts must be >= 0, got {count}")


def pooled_mean(counts: Sequence[int], means: Sequence[float]) -> float:
    """The mean of the concatenation of groups summarised by moments.

    ``μ = Σ nᵢ·μᵢ / Σ nᵢ``; empty groups contribute nothing and an
    entirely empty pool has mean 0 by convention.

    Example
    -------
    >>> pooled_mean([2, 3], [10.0, 16.0])
    13.6
    """
    _check_groups(counts, means)
    total = sum(counts)
    if total == 0:
        return 0.0
    return sum(n * m for n, m in zip(counts, means)) / total


def pooled_variance(
    counts: Sequence[int],
    means: Sequence[float],
    variances: Sequence[float],
) -> float:
    """Sample variance of the concatenation of groups, from moments only.

    For groups of sizes ``nᵢ`` with means ``μᵢ`` and *sample* variances
    ``sᵢ²`` (the ``n−1`` convention; a size-1 group carries ``s² = 0``),
    the concatenated population of ``n = Σ nᵢ`` values has pooled mean
    ``μ`` and sum of squared deviations

        SS = Σᵢ [ (nᵢ − 1)·sᵢ² + nᵢ·(μᵢ − μ)² ]

    so its sample variance is ``SS / (n − 1)`` — exactly what Welford
    over the concatenated values would report.  Groups may be unequal;
    empty groups are skipped; pools of fewer than two values have no
    spread and return 0.

    Example
    -------
    >>> values = [9.0, 11.0, 15.0, 16.0, 17.0]
    >>> round(pooled_variance([2, 3], [10.0, 16.0], [2.0, 1.0]), 10)
    11.8
    >>> import statistics
    >>> round(statistics.variance(values), 10)
    11.8
    """
    _check_groups(counts, means, variances)
    total = sum(counts)
    if total < 2:
        return 0.0
    mean = pooled_mean(counts, means)
    sum_squares = 0.0
    for n, m, s2 in zip(counts, means, variances):
        if n == 0:
            continue
        if s2 < 0:
            raise ValueError(f"group variances must be >= 0, got {s2}")
        delta = m - mean
        sum_squares += (n - 1) * s2 + n * delta * delta
    return sum_squares / (total - 1)
