"""Horvitz–Thompson merge across shards (sharded GPS, ROADMAP 2a).

A stream partitioned by edge hash across ``S`` independent GPS samplers
yields ``S`` reservoirs over *disjoint* substreams.  Because every
subgraph estimator in the paper is an edge product ``Ŝ_J = Π 1/p(e)``
(Theorem 2) and the per-edge inclusion indicators are independent
across shards (each shard runs its own sampler over its own edges),
the union of the reservoirs — with each edge's inclusion probability
``p(e) = min(1, w(e)/z*_s)`` taken at its *owner shard's* final
threshold — supports the very same Algorithm-2 pass, and the resulting
estimates stay unbiased for every fixed router seed:

* within a shard, unbiasedness is the GPS martingale argument
  (Theorem 2 of the paper);
* across shards, the factors of an edge product multiply expectations
  because the shards' samplers are independent;
* the variance estimator ``Ŝ_J(Ŝ_J − 1)`` and the covariance identity
  ``Ŝ_{J1}·Ŝ_{J2} = Ŝ_{J1∪J2}·Ŝ_{J1∩J2}`` (Theorem 3) are *algebraic*
  facts about edge products, so they survive per-edge probabilities
  unchanged.

:func:`merge_estimates` runs that union pass on plain per-shard
``(u, v, p)`` records — no dependency on the reservoir cores, so the
inputs can come from another process or another machine.
:func:`merge_reports` pools replicated per-shard metric moments
(count, mean, variance) into study-level summaries with pooled
variance and normal CIs.

Note the merged path is post-stream only: an *in-stream* (Algorithm 3)
estimate snapshots each shard at its own arrival times, and subgraphs
spanning shards are invisible to every such snapshot, so shard-local
in-stream estimates cannot be merged unbiasedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.stats.confidence import confidence_interval
from repro.stats.variance import pooled_mean, pooled_variance

#: One sampled edge as a shard reports it: endpoints plus the inclusion
#: probability at the owner shard's final threshold.
ShardRecord = Tuple[Hashable, Hashable, float]


@dataclass(frozen=True)
class MergedEstimates:
    """Raw Algorithm-2 accumulators of the union pass.

    Plain data (no CI machinery) so the stats layer stays free of the
    estimation layer; callers assemble their own estimate bundles —
    e.g. :meth:`repro.core.estimates.GraphEstimates.from_raw`.
    """

    triangle_count: float
    triangle_variance: float
    wedge_count: float
    wedge_variance: float
    tri_wedge_covariance: float
    sample_size: int


def merge_estimates(
    shard_samples: Sequence[Sequence[ShardRecord]],
) -> MergedEstimates:
    """Algorithm 2 over the union of per-shard reservoirs.

    ``shard_samples[s]`` holds shard ``s``'s sampled edges as
    ``(u, v, p)`` with ``p`` the edge's inclusion probability at that
    shard's final threshold.  The shards must partition the edge set —
    an edge reported by two shards means the router was not applied and
    raises.  Iteration order is the given record order (insertion-
    ordered dicts), so the merge is deterministic for deterministic
    inputs.

    With a single shard this reproduces the single-sampler post-stream
    estimate (up to float summation order).
    """
    adjacency: Dict[Hashable, Dict[Hashable, float]] = {}
    edge_list: List[Tuple[Hashable, Hashable, float]] = []
    for shard in shard_samples:
        for u, v, p in shard:
            if not 0.0 < p <= 1.0:
                raise ValueError(
                    f"inclusion probability of edge ({u!r}, {v!r}) must be "
                    f"in (0, 1], got {p!r}"
                )
            neighbors_u = adjacency.setdefault(u, {})
            if v in neighbors_u or u == v:
                raise ValueError(
                    f"edge ({u!r}, {v!r}) appears in more than one shard "
                    f"sample (or is a self-loop); shards must partition "
                    f"the edge set"
                )
            inv_p = 1.0 / p
            neighbors_u[v] = inv_p
            adjacency.setdefault(v, {})[u] = inv_p
            edge_list.append((u, v, inv_p))

    triangle_sum = 0.0
    triangle_var = 0.0
    triangle_cov = 0.0
    wedge_sum = 0.0
    wedge_var = 0.0
    wedge_cov = 0.0
    cross_cov = 0.0

    for v1, v2, inv_q in edge_list:
        if len(adjacency[v1]) > len(adjacency[v2]):
            v1, v2 = v2, v1

        tri_cum = 0.0
        wedge_cum = 0.0
        tri_pair = 0.0
        wedge_pair = 0.0
        tri_local = 0.0
        tri_var_local = 0.0
        wedge_local = 0.0
        wedge_var_local = 0.0
        contained_sub = 0.0
        contained_cov = 0.0

        neighbors_v2 = adjacency[v2]
        for v3, inv1 in adjacency[v1].items():
            if v3 == v2:
                continue
            inv2 = neighbors_v2.get(v3)
            if inv2 is not None:
                pair_prod = inv1 * inv2
                estimate = inv_q * pair_prod
                tri_local += estimate
                tri_var_local += estimate * (estimate - 1.0)
                tri_pair += tri_cum * pair_prod
                tri_cum += pair_prod
                contained_sub += pair_prod * (inv1 + inv2)
                contained_cov += estimate * (pair_prod - 1.0)
            wedge_estimate = inv_q * inv1
            wedge_local += wedge_estimate
            wedge_var_local += wedge_estimate * (wedge_estimate - 1.0)
            wedge_pair += wedge_cum * inv1
            wedge_cum += inv1

        for v3, inv2 in neighbors_v2.items():
            if v3 == v1:
                continue
            wedge_estimate = inv_q * inv2
            wedge_local += wedge_estimate
            wedge_var_local += wedge_estimate * (wedge_estimate - 1.0)
            wedge_pair += wedge_cum * inv2
            wedge_cum += inv2

        shared_factor = inv_q * (inv_q - 1.0)
        triangle_sum += tri_local
        triangle_var += tri_var_local
        triangle_cov += 2.0 * shared_factor * tri_pair
        wedge_sum += wedge_local
        wedge_var += wedge_var_local
        wedge_cov += 2.0 * shared_factor * wedge_pair
        cross_cov += shared_factor * (tri_cum * wedge_cum - contained_sub)
        cross_cov += contained_cov

    return MergedEstimates(
        triangle_count=triangle_sum / 3.0,
        triangle_variance=triangle_var / 3.0 + triangle_cov,
        wedge_count=wedge_sum / 2.0,
        wedge_variance=wedge_var / 2.0 + wedge_cov,
        tri_wedge_covariance=cross_cov,
        sample_size=len(edge_list),
    )


@dataclass(frozen=True)
class PooledMetric:
    """One metric pooled across replicated shard groups."""

    count: int
    mean: float
    variance: float  # sample variance of the pooled replicate population
    std_error: float
    ci_low: float
    ci_high: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "std_error": self.std_error,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def merge_reports(
    shard_reports: Sequence[Mapping[str, Tuple[int, float, float]]],
    level: float = 0.95,
) -> Dict[str, PooledMetric]:
    """Pool per-group replicate moments into study-level summaries.

    Each report maps metric names to ``(count, mean, variance)`` — the
    replicate count, mean estimate and *sample* variance a shard group
    (or worker batch) computed locally.  Groups may carry unequal
    counts; the pooled variance recovers the sample variance of the
    concatenated replicate population exactly
    (:func:`repro.stats.variance.pooled_variance`).

    Example
    -------
    >>> merged = merge_reports([{"triangles": (2, 10.0, 2.0)},
    ...                         {"triangles": (3, 16.0, 1.0)}])
    >>> merged["triangles"].count, merged["triangles"].mean
    (5, 13.6)
    """
    if not shard_reports:
        raise ValueError("merge_reports needs at least one report")
    names = list(shard_reports[0])
    for report in shard_reports[1:]:
        if list(report) != names:
            raise ValueError(
                f"shard reports disagree on metric names: {names} vs "
                f"{list(report)}"
            )
    merged: Dict[str, PooledMetric] = {}
    for name in names:
        counts = [report[name][0] for report in shard_reports]
        means = [report[name][1] for report in shard_reports]
        variances = [report[name][2] for report in shard_reports]
        count = sum(counts)
        mean = pooled_mean(counts, means)
        variance = pooled_variance(counts, means, variances)
        std_error = (variance / count) ** 0.5 if count > 0 else 0.0
        low, high = confidence_interval(mean, std_error**2, level=level)
        merged[name] = PooledMetric(
            count=count,
            mean=mean,
            variance=variance,
            std_error=std_error,
            ci_low=low,
            ci_high=high,
        )
    return merged


__all__ = [
    "MergedEstimates",
    "PooledMetric",
    "ShardRecord",
    "merge_estimates",
    "merge_reports",
]
