"""Statistics substrate: HT estimation, confidence intervals, error metrics.

Everything the estimation layer and the experiment harness need on the
statistics side, implemented from scratch:

* Horvitz–Thompson inverse-probability estimators (the algebra behind every
  count estimate in the paper);
* normal confidence intervals via a from-scratch inverse normal CDF
  (paper Sec. 6: ``X̂ ± 1.96·sqrt(Var[X̂])``);
* the delta-method variance for ratio estimators (paper Eq. 11, used for
  the global clustering coefficient);
* error metrics: ARE (Sec. 6), MARE and max-ARE (Table 3), NRMSE, CI
  coverage;
* Welford running moments for Monte-Carlo unbiasedness checks;
* the sharded merge layer: the union Horvitz–Thompson pass over
  per-shard reservoirs and pooled variance across replicate groups
  (:mod:`repro.stats.merge`, :mod:`repro.stats.variance`).
"""

from repro.stats.confidence import confidence_interval, inverse_normal_cdf
from repro.stats.horvitz_thompson import (
    ht_estimate,
    ht_variance_with_replacement,
    inverse_probability,
)
from repro.stats.metrics import (
    absolute_relative_error,
    ci_coverage,
    max_absolute_relative_error,
    mean_absolute_relative_error,
    normalized_rmse,
)
from repro.stats.merge import (
    MergedEstimates,
    PooledMetric,
    merge_estimates,
    merge_reports,
)
from repro.stats.running import RunningMoments
from repro.stats.variance import (
    pooled_mean,
    pooled_variance,
    ratio_variance_delta,
)

__all__ = [
    "confidence_interval",
    "inverse_normal_cdf",
    "ht_estimate",
    "ht_variance_with_replacement",
    "inverse_probability",
    "absolute_relative_error",
    "ci_coverage",
    "max_absolute_relative_error",
    "mean_absolute_relative_error",
    "normalized_rmse",
    "RunningMoments",
    "MergedEstimates",
    "PooledMetric",
    "merge_estimates",
    "merge_reports",
    "pooled_mean",
    "pooled_variance",
    "ratio_variance_delta",
]
