"""Error metrics used throughout the paper's evaluation.

* ARE — absolute relative error ``|x̂ − x| / x`` (Sec. 6, step 3);
* MARE — mean ARE over a tracked time series (Table 3);
* max-ARE — worst-case ARE over a time series (Table 3);
* NRMSE — normalised root-mean-square error (for Monte-Carlo summaries);
* CI coverage — fraction of runs whose interval contains the truth.
"""

from __future__ import annotations

from math import sqrt
from typing import Sequence, Tuple


def absolute_relative_error(estimate: float, actual: float) -> float:
    """ARE = |estimate − actual| / actual (0 when both are zero)."""
    if actual == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - actual) / abs(actual)


def mean_absolute_relative_error(
    estimates: Sequence[float], actuals: Sequence[float]
) -> float:
    """MARE over a paired series; zero-actual points are skipped.

    Tracking experiments start from an empty graph where the true count is
    zero for a while; the paper's MARE is only meaningful once the truth is
    non-zero, so those leading points are excluded.
    """
    _check_paired(estimates, actuals)
    errors = [
        absolute_relative_error(e, a)
        for e, a in zip(estimates, actuals)
        if a != 0
    ]
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


def max_absolute_relative_error(
    estimates: Sequence[float], actuals: Sequence[float]
) -> float:
    """Maximum ARE over a paired series (zero-actual points skipped)."""
    _check_paired(estimates, actuals)
    errors = [
        absolute_relative_error(e, a)
        for e, a in zip(estimates, actuals)
        if a != 0
    ]
    if not errors:
        return 0.0
    return max(errors)


def normalized_rmse(estimates: Sequence[float], actual: float) -> float:
    """sqrt(mean((x̂ − x)²)) / x for repeated estimates of one truth."""
    if not estimates:
        raise ValueError("need at least one estimate")
    if actual == 0:
        raise ValueError("actual must be non-zero for NRMSE")
    mse = sum((e - actual) ** 2 for e in estimates) / len(estimates)
    return sqrt(mse) / abs(actual)


def ci_coverage(
    intervals: Sequence[Tuple[float, float]], actual: float
) -> float:
    """Fraction of (lb, ub) intervals containing ``actual``."""
    if not intervals:
        raise ValueError("need at least one interval")
    hits = sum(1 for lb, ub in intervals if lb <= actual <= ub)
    return hits / len(intervals)


def _check_paired(estimates: Sequence[float], actuals: Sequence[float]) -> None:
    if len(estimates) != len(actuals):
        raise ValueError(
            f"series lengths differ: {len(estimates)} vs {len(actuals)}"
        )
