"""Normal-approximation confidence intervals.

The paper reports 95% bounds ``X̂ ± 1.96·sqrt(Var[X̂])`` (Sec. 6, step 4).
We support arbitrary levels via a from-scratch inverse normal CDF (the
Acklam rational approximation, |relative error| < 1.15e-9) so the core
library has no scipy dependency.
"""

from __future__ import annotations

import math
from typing import Tuple

# Coefficients of Peter Acklam's rational approximation to the inverse
# normal CDF.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)

_LOW = 0.02425
_HIGH = 1.0 - _LOW


def inverse_normal_cdf(p: float) -> float:
    """Quantile function of the standard normal distribution.

    >>> round(inverse_normal_cdf(0.975), 2)
    1.96
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be strictly between 0 and 1")
    if p < _LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    if p > _HIGH:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (
        (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q
    ) / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)


def z_score(level: float) -> float:
    """Two-sided normal critical value for a confidence ``level`` in (0, 1)."""
    if not 0.0 < level < 1.0:
        raise ValueError("level must be strictly between 0 and 1")
    return inverse_normal_cdf(0.5 + level / 2.0)


def confidence_interval(
    estimate: float, variance: float, level: float = 0.95
) -> Tuple[float, float]:
    """Normal CI ``estimate ± z·sqrt(variance)``.

    Negative variance estimates (possible for unbiased variance estimators
    in small samples) are clamped to zero, collapsing the interval onto the
    point estimate.
    """
    variance = max(0.0, variance)
    half_width = z_score(level) * math.sqrt(variance)
    return estimate - half_width, estimate + half_width
