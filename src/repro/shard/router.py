"""Deterministic edge-hash routing: which shard owns an edge.

The router is a pure function of the *canonical* edge — the endpoint
pair ordered ``(min, max)`` — a seed, and the shard count, so both
orientations of an edge always land on the same shard, every process
computes the same partition (no Python ``hash()``, which is salted per
process by ``PYTHONHASHSEED``), and re-running a sharded study replays
the identical substreams.

The hash is a seeded splitmix64 chain: the seed primes a 64-bit state
with the splitmix increment, then each endpoint is folded in through
the splitmix64 finalizer (xor-shift / wrapping-multiply rounds).  The
scalar form (:func:`edge_key`, :func:`edge_shard`) and the vectorised
form over ``int32`` columns (:func:`shard_columns`) are bit-identical:
numpy's ``int32 -> uint64`` cast sign-extends exactly like
``x & (2**64 - 1)`` does on negative Python ints.
"""

from __future__ import annotations

from repro.streams.chunks import numpy_or_none

_MASK64 = (1 << 64) - 1
#: splitmix64 constants (Steele, Lea & Flood; same mixer family as
#: murmur3's finalizer).
_INCREMENT = 0x9E3779B97F4A7C15
_MULT1 = 0xBF58476D1CE4E5B9
_MULT2 = 0x94D049BB133111EB


def _mix64(z: int) -> int:
    """The splitmix64 finalizer on a 64-bit Python int."""
    z &= _MASK64
    z ^= z >> 30
    z = (z * _MULT1) & _MASK64
    z ^= z >> 27
    z = (z * _MULT2) & _MASK64
    z ^= z >> 31
    return z


def edge_key(u: int, v: int, seed: int = 0) -> int:
    """The 64-bit router key of the canonical edge ``{u, v}``.

    Orientation-invariant (``edge_key(u, v) == edge_key(v, u)``) and a
    pure function of ``(min(u, v), max(u, v), seed)``.

    Example
    -------
    >>> edge_key(3, 7) == edge_key(7, 3)
    True
    >>> edge_key(3, 7, seed=1) != edge_key(3, 7, seed=2)
    True
    """
    a, b = (u, v) if u <= v else (v, u)
    state = _mix64(seed + _INCREMENT)
    state = _mix64(state ^ (a & _MASK64))
    return _mix64(state ^ (b & _MASK64))


def edge_shard(u: int, v: int, shards: int, seed: int = 0) -> int:
    """The shard (``0 .. shards-1``) owning the canonical edge ``{u, v}``.

    Example
    -------
    >>> edge_shard(3, 7, 4) == edge_shard(7, 3, 4)
    True
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards == 1:
        return 0
    return edge_key(u, v, seed) % shards


def shard_columns(us, vs, shards: int, seed: int = 0):
    """Vectorised :func:`edge_shard` over ``int32`` edge columns.

    Returns an ``int64`` array of shard ids aligned with the input
    columns, bit-identical to the scalar router applied per edge.
    Requires numpy (the columns already are numpy arrays on every path
    that calls this); raises when it is unavailable.
    """
    np = numpy_or_none()
    if np is None:  # pragma: no cover - columnar callers imply numpy
        raise RuntimeError("shard_columns requires numpy")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    us = np.asarray(us)
    vs = np.asarray(vs)
    if shards == 1:
        return np.zeros(len(us), dtype=np.int64)
    # Canonicalise on the signed values (matching the scalar ``u <= v``
    # comparison), then sign-extend into the uint64 mixing domain.
    lo = np.minimum(us, vs).astype(np.uint64)
    hi = np.maximum(us, vs).astype(np.uint64)
    state = np.uint64(_mix64(seed + _INCREMENT))
    keys = _mix64_array(np, _mix64_array(np, state ^ lo) ^ hi)
    return (keys % np.uint64(shards)).astype(np.int64)


def _mix64_array(np, z):
    """The splitmix64 finalizer over a ``uint64`` array (wrapping ops)."""
    z = z ^ (z >> np.uint64(30))
    z = z * np.uint64(_MULT1)
    z = z ^ (z >> np.uint64(27))
    z = z * np.uint64(_MULT2)
    return z ^ (z >> np.uint64(31))


def split_stream(edges, shards: int, seed: int = 0):
    """Partition an iterable of ``(u, v)`` edges into per-shard lists.

    Order-preserving within each shard: concatenating the returned
    substreams yields a permutation of the input in which every shard's
    relative arrival order is intact.
    """
    buckets = [[] for _ in range(shards)]
    for u, v in edges:
        buckets[edge_shard(u, v, shards, seed)].append((u, v))
    return buckets


__all__ = [
    "edge_key",
    "edge_shard",
    "shard_columns",
    "split_stream",
]
