"""Horizontally sharded GPS sampling (ROADMAP item 2a).

A stream partitioned by *edge hash* across ``S`` independent GPS
samplers, each with budget ``m/S``, merges back into a single unbiased
Horvitz–Thompson estimate: the router assigns every canonical edge to
exactly one shard, so the per-shard reservoirs are samples of disjoint
substreams and the union post-stream pass (:func:`repro.stats.merge.
merge_estimates`) evaluates Algorithm 2 with each edge's inclusion
probability taken at its *owner shard's* final threshold.

* :mod:`repro.shard.spec` — :class:`ShardSpec`, the frozen JSON-round-
  trip description of a shard layout (count + router seed);
* :mod:`repro.shard.router` — the deterministic seeded splitmix64 edge
  hash (scalar and vectorised forms, bit-identical);
* :mod:`repro.shard.runner` — :class:`ShardedRunner` driving ``S``
  per-shard chunked :class:`~repro.engine.StreamEngine` passes inline
  or across a process pool over the shared-memory edge population.
"""

from repro.shard.router import edge_key, edge_shard, shard_columns
from repro.shard.runner import ShardedResult, ShardedRunner
from repro.shard.spec import ShardSpec

__all__ = [
    "ShardSpec",
    "ShardedResult",
    "ShardedRunner",
    "edge_key",
    "edge_shard",
    "shard_columns",
]
