"""Declarative shard layouts: a shard topology is data, not code.

A :class:`ShardSpec` freezes everything that determines how a stream is
partitioned across samplers — the shard count and the router seed —
into a hashable value object with a lossless JSON round trip, mirroring
:class:`~repro.api.spec.RunSpec` and :class:`~repro.serve.spec.ServeSpec`.
Two processes holding equal specs compute the identical partition, which
is what lets a sharded study be resumed, distributed, and replayed
bit-identically.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict


@dataclass(frozen=True)
class ShardSpec:
    """One declarative shard layout.

    Attributes
    ----------
    shards:
        Number of independent samplers the stream is partitioned
        across.  ``1`` is the degenerate single-sampler layout (every
        edge routes to shard 0).
    router_seed:
        Seed of the splitmix64 edge hash (:mod:`repro.shard.router`).
        Different seeds give independent partitions of the same stream;
        equal seeds give the identical partition in every process.
    """

    shards: int = 1
    router_seed: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.router_seed < 0:
            raise ValueError("router_seed must be >= 0")

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe; inverse of :meth:`from_dict`).

        Example
        -------
        >>> ShardSpec(shards=4).to_dict()["shards"]
        4
        """
        return asdict(self)

    def to_json(self, **kwargs: Any) -> str:
        """JSON text form; :meth:`from_json` inverts it losslessly.

        Example
        -------
        >>> spec = ShardSpec(shards=4, router_seed=7)
        >>> ShardSpec.from_json(spec.to_json()) == spec
        True
        """
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardSpec":
        """Rebuild a spec from :meth:`to_dict` output; unknown keys raise."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ShardSpec fields: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ShardSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "ShardSpec":
        """A copy with ``changes`` applied (re-runs validation).

        Example
        -------
        >>> ShardSpec().replace(shards=8).shards
        8
        """
        return dataclasses.replace(self, **changes)


__all__ = ["ShardSpec"]
