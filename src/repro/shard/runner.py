"""``ShardedRunner``: S per-shard engine passes plus the HT merge.

One sharded pass is:

1. **permute** — the stream permutation seeded exactly like every other
   entry point (index-permutation trick on columnar streams, so the
   arrival order is bit-identical to the scalar shuffle);
2. **route** — the seeded splitmix64 edge hash
   (:mod:`repro.shard.router`) assigns every canonical edge to one of
   ``S`` shards; boolean-mask selection keeps each substream in arrival
   order;
3. **drive** — each shard's substream runs through its own chunked
   :class:`~repro.engine.stream_engine.StreamEngine` over a GPS sampler
   with budget ``m/S`` and its own seed (``sampler_seed·S + s``, so
   replications never collide with shard offsets);
4. **merge** — per-shard reservoirs are read out as ``(u, v, p)``
   records at the owner shard's final threshold and fed to
   :func:`repro.stats.merge.merge_estimates`, the union Algorithm-2
   pass; the result assembles into an ordinary
   :class:`~repro.core.estimates.GraphEstimates` bundle.

Inline mode (``workers=0``) runs the shards sequentially in-process —
the deterministic test path.  Pool mode fans shards across a
:class:`~concurrent.futures.ProcessPoolExecutor` over the existing
shared-memory edge population (publish once, attach per worker);
results are bit-identical to inline because every worker replays the
same permutation and routing on the same columns.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.compact import DEFAULT_CORE, validate_core
from repro.core.estimates import GraphEstimates
from repro.core.reservoir import snapshot_view
from repro.core.weights import WeightFunction, is_label_free
from repro.engine.resilient import (
    DEFAULT_RETRY_BUDGET,
    RetryStats,
    run_resilient,
)
from repro.engine.shared_edges import SharedEdgePopulation
from repro.faults.injector import coerce_injector
from repro.engine.stream_engine import (
    DEFAULT_PIPELINE,
    StreamEngine,
    validate_pipeline,
)
from repro.shard.router import shard_columns, split_stream
from repro.shard.spec import ShardSpec
from repro.stats.merge import ShardRecord, merge_estimates
from repro.streams.chunks import (
    DEFAULT_CHUNK_SIZE,
    columnar_or_none,
    numpy_or_none,
)

#: Methods whose counters expose a GPS reservoir the HT merge can read.
#: The merged path is post-stream only — in-stream (Algorithm 3)
#: snapshots are blind to subgraphs spanning shards and cannot be
#: merged unbiasedly — so only the retrospective GPS entry qualifies.
SHARDABLE_METHODS = ("gps-post",)


def _get_method(name: str):
    """Lazy registry lookup: repro.api imports this package at load time."""
    from repro.api.registry import get_method

    return get_method(name)


def validate_shardable_method(name: str) -> str:
    """Reject methods the HT merge cannot read; returns ``name``."""
    if name not in SHARDABLE_METHODS:
        raise ValueError(
            f"method {name!r} cannot run sharded: the Horvitz-Thompson "
            f"merge reads per-shard GPS reservoirs post-stream, so only "
            f"{SHARDABLE_METHODS} qualify (in-stream snapshots miss "
            f"cross-shard subgraphs and cannot be merged unbiasedly)"
        )
    return name


@dataclass(frozen=True)
class ShardedResult:
    """Outcome of one sharded pass (the merge plus per-shard telemetry)."""

    estimates: GraphEstimates
    edges: int
    shards: int
    elapsed_seconds: float
    pipeline: str  # "chunked" | "scalar" — the per-shard drive used
    workers: int
    shard_edges: Tuple[int, ...]
    shard_sample_sizes: Tuple[int, ...]
    shard_thresholds: Tuple[float, ...]
    #: Fault-tolerance cost: shard tasks resubmitted after worker failure.
    task_retries: int = 0
    #: Fault-tolerance cost: executors rebuilt after BrokenProcessPool.
    pool_rebuilds: int = 0


class _ColumnStream:
    """Routed columns presented through the engine's ``chunks`` protocol."""

    __slots__ = ("_us", "_vs")

    def __init__(self, us, vs) -> None:
        self._us = us
        self._vs = vs

    def __len__(self) -> int:
        return len(self._us)

    def __iter__(self):
        return zip(self._us.tolist(), self._vs.tolist())

    def chunks(self, size: int):
        for at in range(0, len(self._us), size):
            yield self._us[at:at + size], self._vs[at:at + size]


def _extract_sample(counter: Any) -> Tuple[List[ShardRecord], int, float]:
    """A shard's reservoir as ``(u, v, p)`` records at its threshold."""
    sampler = getattr(counter, "sampler", counter)
    threshold = sampler.threshold
    view = snapshot_view(sampler.sample)
    records = [
        (record.u, record.v, record.inclusion_probability(threshold))
        for record in view.records()
    ]
    return records, sampler.sample_size, threshold


def _permuted_columns(columns, stream_seed: Optional[int]):
    """The stream permutation on columns, bit-identical to tuple shuffle."""
    if stream_seed is None:
        return columns
    np = numpy_or_none()
    n = len(columns[0])
    # Shuffling an index permutation consumes the very same RNG sequence
    # as shuffling the edge list (Fisher-Yates swaps are value-blind).
    perm = list(range(n))
    random.Random(stream_seed).shuffle(perm)
    idx = np.asarray(perm, dtype=np.intp)
    return columns[0][idx], columns[1][idx]


def _drive_shard(counter: Any, substream, chunked: bool):
    """One shard's engine pass; returns the engine's edge count."""
    if chunked:
        engine = StreamEngine(counter, chunk_size=DEFAULT_CHUNK_SIZE)
    else:
        engine = StreamEngine(counter)
    return engine.run(substream).edges


# ----------------------------------------------------------------------
# Process-pool plumbing (shared-memory fan-out, one task per shard)
# ----------------------------------------------------------------------
_SHARD_STATE: Optional[Tuple] = None


def _shard_pool_initializer(
    descriptor,
    shards: int,
    router_seed: int,
    capacity: int,
    weight_fn: Optional[WeightFunction],
    method: str,
    core: str,
    stream_seed: Optional[int],
    sampler_seed: int,
) -> None:
    """Attach the published columns once per worker; permute once too."""
    global _SHARD_STATE
    columns = SharedEdgePopulation.attach_columnar(descriptor)
    us, vs = _permuted_columns(columns, stream_seed)
    ids = shard_columns(us, vs, shards, router_seed)
    _SHARD_STATE = (
        us, vs, ids, shards, router_seed, capacity, weight_fn, method,
        core, sampler_seed,
    )


def _run_shard_task(shard: int):
    """Worker entry point: drive one shard and report its reservoir."""
    (us, vs, ids, shards, _router_seed, capacity, weight_fn, method,
     core, sampler_seed) = _SHARD_STATE
    mask = ids == shard
    sub_us = us[mask]
    sub_vs = vs[mask]
    counter = _get_method(method).make(
        capacity, len(sub_us), sampler_seed * shards + shard,
        weight_fn=weight_fn, core=core,
    )
    edges = _drive_shard(counter, _ColumnStream(sub_us, sub_vs), chunked=True)
    records, sample_size, threshold = _extract_sample(counter)
    return shard, records, sample_size, threshold, edges


class ShardedRunner:
    """Partition a stream across ``S`` GPS samplers and merge the HT sums.

    Parameters
    ----------
    edges:
        The edge population in canonical (pre-shuffle) order, exactly as
        ``run(spec)`` resolves it.
    shards:
        Number of samplers; must divide ``budget`` evenly.
    budget:
        The *total* memory budget ``m``; each shard gets ``m / shards``.
    method:
        Registered method name; must expose a GPS reservoir
        (:data:`SHARDABLE_METHODS`).
    weight_fn:
        Shared weight-function instance (``None`` = method default).
    stream_seed / sampler_seed:
        The usual seeds; shard ``s`` seeds its sampler with
        ``sampler_seed * shards + s`` so replications (which bump
        ``sampler_seed`` by one) never collide with shard offsets.
    router_seed:
        Seed of the edge-hash partition.
    workers:
        ``0`` runs shards inline (sequential, deterministic test path);
        ``None`` auto-sizes ``min(shards, cpu)``; ``> 0`` caps the pool.
        The pool path requires a columnar (int-labelled) stream and a
        chunk-capable configuration; anything else falls back inline.

    Example
    -------
    >>> runner = ShardedRunner([(0, 1), (1, 2), (0, 2), (2, 3)],
    ...                        shards=2, budget=4)
    >>> result = runner.run()
    >>> result.shards, result.edges
    (2, 4)
    """

    def __init__(
        self,
        edges: Sequence[Tuple[Any, Any]],
        *,
        shards: int,
        budget: int,
        method: str = "gps-post",
        weight_fn: Optional[WeightFunction] = None,
        stream_seed: Optional[int] = 0,
        sampler_seed: int = 1,
        router_seed: int = 0,
        core: str = DEFAULT_CORE,
        pipeline: str = DEFAULT_PIPELINE,
        workers: Optional[int] = 0,
        faults=None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if budget < shards or budget % shards != 0:
            raise ValueError(
                f"budget ({budget}) must divide evenly across the "
                f"{shards} shards so every sampler gets the same capacity"
            )
        validate_shardable_method(method)
        validate_core(core)
        validate_pipeline(pipeline)
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0 (0 runs inline)")
        self._edges = list(edges)
        if self._edges and not (
            isinstance(self._edges[0][0], int)
            and isinstance(self._edges[0][1], int)
        ):
            raise ValueError(
                "sharded execution requires integer node labels (the "
                "edge-hash router mixes 64-bit integers); intern the "
                "stream first"
            )
        self._shards = shards
        self._budget = budget
        self._method = method
        self._weight_fn = weight_fn
        self._stream_seed = stream_seed
        self._sampler_seed = sampler_seed
        self._router_seed = router_seed
        self._core = core
        self._pipeline = pipeline
        self._workers = workers
        self._injector = coerce_injector(faults)
        self._retry_budget = retry_budget
        self._columns = (
            columnar_or_none(self._edges)
            if pipeline == "chunked" and numpy_or_none() is not None
            else None
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_layout(
        cls,
        edges: Sequence[Tuple[Any, Any]],
        layout: "ShardSpec",
        **kwargs: Any,
    ) -> "ShardedRunner":
        """Build a runner from a declarative :class:`ShardSpec` layout."""
        return cls(
            edges,
            shards=layout.shards,
            router_seed=layout.router_seed,
            **kwargs,
        )

    @property
    def layout(self) -> "ShardSpec":
        """The runner's shard layout as a declarative value object."""
        return ShardSpec(shards=self._shards, router_seed=self._router_seed)

    # ------------------------------------------------------------------
    def _chunk_capable(self) -> bool:
        """Whether the per-shard drives may use the columnar gate."""
        if self._columns is None:
            return False
        method = _get_method(self._method)
        if method.reads_labels:
            return False
        if self._weight_fn is not None and not is_label_free(self._weight_fn):
            return False
        probe = method.make(
            self._budget // self._shards, 0, self._sampler_seed,
            weight_fn=self._weight_fn, core=self._core,
        )
        return bool(getattr(probe, "chunk_vectorized", False))

    def _resolve_workers(self) -> int:
        import os

        if self._workers is None:
            return min(self._shards, os.cpu_count() or 1)
        return min(self._workers, self._shards)

    # ------------------------------------------------------------------
    def run(
        self,
        stream_seed: Optional[int] = None,
        sampler_seed: Optional[int] = None,
    ) -> ShardedResult:
        """One sharded pass; seed overrides support replication loops."""
        stream_seed = (
            self._stream_seed if stream_seed is None else stream_seed
        )
        sampler_seed = (
            self._sampler_seed if sampler_seed is None else sampler_seed
        )
        # Wall time feeds only the throughput report, never an estimate.
        started = time.perf_counter()  # repro-lint: disable=nondet-ban
        chunked = self._chunk_capable()
        workers = self._resolve_workers() if self._shards > 1 else 0
        if workers > 1 and chunked:
            outcome, stats = self._run_pooled(
                stream_seed, sampler_seed, workers
            )
        else:
            outcome = self._run_inline(stream_seed, sampler_seed, chunked)
            workers = 0
            stats = RetryStats()
        samples, sizes, thresholds, shard_edges = outcome
        merged = merge_estimates(samples)
        estimates = GraphEstimates.from_raw(
            triangle_count=merged.triangle_count,
            triangle_variance=merged.triangle_variance,
            wedge_count=merged.wedge_count,
            wedge_variance=merged.wedge_variance,
            tri_wedge_covariance=merged.tri_wedge_covariance,
            stream_position=len(self._edges),
            sample_size=merged.sample_size,
            threshold=max(thresholds) if thresholds else 0.0,
        )
        return ShardedResult(
            estimates=estimates,
            edges=len(self._edges),
            shards=self._shards,
            elapsed_seconds=time.perf_counter()  # repro-lint: disable=nondet-ban
            - started,
            pipeline="chunked" if chunked else "scalar",
            workers=workers,
            shard_edges=tuple(shard_edges),
            shard_sample_sizes=tuple(sizes),
            shard_thresholds=tuple(thresholds),
            task_retries=stats.task_retries,
            pool_rebuilds=stats.pool_rebuilds,
        )

    # ------------------------------------------------------------------
    def _run_inline(
        self,
        stream_seed: Optional[int],
        sampler_seed: int,
        chunked: bool,
    ):
        method = _get_method(self._method)
        capacity = self._budget // self._shards
        samples: List[List[ShardRecord]] = []
        sizes: List[int] = []
        thresholds: List[float] = []
        shard_edges: List[int] = []
        if chunked:
            us, vs = _permuted_columns(self._columns, stream_seed)
            ids = shard_columns(us, vs, self._shards, self._router_seed)
            substreams = [
                _ColumnStream(us[ids == s], vs[ids == s])
                for s in range(self._shards)
            ]
        else:
            order = list(self._edges)
            if stream_seed is not None:
                random.Random(stream_seed).shuffle(order)
            substreams = split_stream(order, self._shards, self._router_seed)
        for s, substream in enumerate(substreams):
            counter = method.make(
                capacity, len(substream), sampler_seed * self._shards + s,
                weight_fn=self._weight_fn, core=self._core,
            )
            shard_edges.append(_drive_shard(counter, substream, chunked))
            records, size, threshold = _extract_sample(counter)
            samples.append(records)
            sizes.append(size)
            thresholds.append(threshold)
        return samples, sizes, thresholds, shard_edges

    def _run_pooled(
        self,
        stream_seed: Optional[int],
        sampler_seed: int,
        workers: int,
    ):
        published = [SharedEdgePopulation.publish(self._edges)]

        def initargs_of(population: SharedEdgePopulation):
            return (
                population.descriptor,
                self._shards,
                self._router_seed,
                self._budget // self._shards,
                self._weight_fn,
                self._method,
                self._core,
                stream_seed,
                sampler_seed,
            )

        def refresh():
            # Republish only if a platform cleanup took the segment
            # along with the crashed worker.
            try:
                SharedEdgePopulation.attach(published[-1].descriptor)
                return None
            except (OSError, ValueError):
                published.append(SharedEdgePopulation.publish(self._edges))
                return initargs_of(published[-1])

        try:
            outcomes, stats = run_resilient(
                _run_shard_task,
                list(range(self._shards)),
                workers=workers,
                initializer=_shard_pool_initializer,
                initargs=initargs_of(published[0]),
                retry_budget=self._retry_budget,
                injector=self._injector,
                site="shard",
                refresh=refresh,
            )
        finally:
            for population in published:
                population.close()
                population.unlink()
        outcomes.sort(key=lambda item: item[0])
        samples = [item[1] for item in outcomes]
        sizes = [item[2] for item in outcomes]
        thresholds = [item[3] for item in outcomes]
        shard_edges = [item[4] for item in outcomes]
        return (samples, sizes, thresholds, shard_edges), stats


__all__ = [
    "SHARDABLE_METHODS",
    "ShardedResult",
    "ShardedRunner",
    "validate_shardable_method",
]
