"""Seeded retry backoff shared by the fault-tolerant layers.

:func:`backoff_delay` computes capped exponential backoff with jitter
drawn from an *injected* seeded RNG — the retry schedule of a
supervised source (or a reconnecting distributed worker) is as
deterministic as its estimates.  CHANGES.md has always documented this
module; the function previously lived in :mod:`repro.faults.corruption`
and is still re-exported from there and from :mod:`repro.faults`.
"""

from __future__ import annotations

import random


def backoff_delay(
    attempt: int,
    *,
    base: float,
    cap: float,
    rng: random.Random,
) -> float:
    """Capped exponential backoff with seeded jitter.

    ``attempt`` counts from zero.  The full delay doubles per attempt
    up to ``cap``; the returned delay is jittered into the upper half
    of that window (``[0.5, 1.0) * full``) so a fleet of reconnecting
    sources does not thundering-herd a recovering server — with the
    jitter drawn from the *injected* ``rng``, never from OS entropy.
    """
    if base <= 0.0:
        raise ValueError("base must be positive")
    if cap < base:
        raise ValueError("cap must be >= base")
    full = min(cap, base * (2.0 ** attempt))
    return full * (0.5 + 0.5 * rng.random())


__all__ = ["backoff_delay"]
