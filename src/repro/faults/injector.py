"""Runtime state of a :class:`~repro.faults.spec.FaultPlan`.

A :class:`FaultInjector` walks one plan through a run: every hook
(resilient pool, serve source, distributed sweep worker) asks it
"does a fault fire here?", and
the injector burns down each fault's ``times`` budget and records what
fired.  Decisions are pure functions of (plan, call sequence) — no
clocks, no OS entropy — so a chaos run replays exactly.

Pool faults are decided in the *parent* process and shipped to the
worker inside the task payload (the worker merely obeys ``"crash"`` /
``"raise"``).  That keeps the burn-down state in one place: a crashed
worker cannot lose it, so the retry of task *k* deterministically
succeeds once the fault's budget is spent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.faults.spec import TASK_KINDS, FaultPlan, FaultSpec


class FaultInjected(RuntimeError):
    """Raised by an injected ``raise-task`` fault."""


@dataclass(frozen=True)
class FiredFault:
    """One fault occurrence, recorded on :attr:`FaultInjector.fired`."""

    kind: str
    site: str
    index: int
    attempt: int


class FaultInjector:
    """Mutable burn-down state of one :class:`FaultPlan`."""

    __slots__ = ("_plan", "_remaining", "fired")

    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._remaining = [fault.times for fault in plan.faults]
        #: Every fault occurrence, in firing order.
        self.fired: List[FiredFault] = []

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def _armed(
        self, kinds: Tuple[str, ...], site: str
    ) -> Iterator[Tuple[int, FaultSpec]]:
        for slot, fault in enumerate(self._plan.faults):
            if (
                fault.kind in kinds
                and fault.site in ("", site)
                and self._remaining[slot] > 0
            ):
                yield slot, fault

    def _fire(self, slot: int, fault: FaultSpec, site: str,
              index: int, attempt: int) -> None:
        self._remaining[slot] -= 1
        self.fired.append(FiredFault(fault.kind, site, index, attempt))

    # ------------------------------------------------------------------
    # Pool hooks (parent-side decisions)
    # ------------------------------------------------------------------
    def task_fault(
        self, site: str, index: int, attempt: int = 0
    ) -> Optional[str]:
        """Instruction for pool task ``index`` on this ``attempt``.

        Returns ``"crash"`` (worker must die mid-task), ``"raise"``
        (worker must raise :class:`FaultInjected`), or ``None``.
        """
        for slot, fault in self._armed(TASK_KINDS, site):
            if fault.at == index:
                self._fire(slot, fault, site, index, attempt)
                return "crash" if fault.kind == "crash-worker" else "raise"
        return None

    # ------------------------------------------------------------------
    # Source hooks
    # ------------------------------------------------------------------
    def source_fault(self, site: str, index: int) -> Optional[str]:
        """Disconnect decision before delivering block ``index``.

        Fires at the first armed block with ``index >= at`` — a
        restarted stream counts blocks from zero again, and the spent
        ``times`` budget keeps a replay from re-triggering forever.
        """
        for slot, fault in self._armed(("disconnect-source",), site):
            if index >= fault.at:
                self._fire(slot, fault, site, index, 0)
                return "disconnect"
        return None

    def stall_polls(self, site: str, index: int) -> int:
        """Stall length (in polls) before delivering block ``index``."""
        for slot, fault in self._armed(("stall-source",), site):
            if index >= fault.at:
                # One stall is one occurrence; `times` is its length.
                self._remaining[slot] = 0
                self.fired.append(
                    FiredFault(fault.kind, site, index, 0)
                )
                return fault.times
        return 0

    # ------------------------------------------------------------------
    # Distributed-sweep hooks (site "distrib")
    # ------------------------------------------------------------------
    def midcell_fault(self, site: str, index: int) -> bool:
        """Should the worker SIGKILL itself after claim ``index``?

        Fires once when the worker's zero-based claim counter equals
        ``at`` — i.e. *after* the lease is taken but *before* the cell
        result is written, leaving a live lease for survivors to
        reclaim.
        """
        for slot, fault in self._armed(("crash-worker-midcell",), site):
            if fault.at == index:
                self._fire(slot, fault, site, index, 0)
                return True
        return False

    def heartbeat_stalls(self, site: str, index: int) -> int:
        """Heartbeat touches to skip, consulted at beat ``index``.

        Fires at the first armed beat with ``index >= at``; ``times``
        is the stall length (touches skipped, one occurrence), so a
        long enough stall lets the lease cross ``lease_timeout`` and
        be stolen while its owner is still alive — the double-claim
        the idempotent store must absorb.
        """
        for slot, fault in self._armed(("stall-heartbeat",), site):
            if index >= fault.at:
                # One stall is one occurrence; `times` is its length.
                self._remaining[slot] = 0
                self.fired.append(
                    FiredFault(fault.kind, site, index, 0)
                )
                return fault.times
        return 0

    def steal_lease(self, site: str, index: int) -> bool:
        """Treat the fresh lease met at probe ``index`` as stale.

        Consulted each time a claim scan encounters a *fresh* lease;
        firing forces the reclaim path — a deliberate double-claim of
        a cell another worker is still executing.
        """
        for slot, fault in self._armed(("steal-lease",), site):
            if index >= fault.at:
                self._fire(slot, fault, site, index, 0)
                return True
        return False

    # ------------------------------------------------------------------
    # Cache hooks
    # ------------------------------------------------------------------
    def cache_faults(self, site: str) -> List[FaultSpec]:
        """Armed ``corrupt-cache`` faults for ``site`` (burned on read)."""
        out: List[FaultSpec] = []
        for slot, fault in self._armed(("corrupt-cache",), site):
            self._fire(slot, fault, site, fault.at, 0)
            out.append(fault)
        return out


def coerce_injector(
    faults: Any,
) -> Optional[FaultInjector]:
    """Normalize a ``faults=`` argument to an injector (or ``None``).

    Accepts ``None``, a :class:`FaultPlan` (wrapped in a fresh
    injector) or an existing :class:`FaultInjector` (shared, so one
    plan can span several components of a run).
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    raise TypeError(
        f"faults must be a FaultPlan or FaultInjector, got {faults!r}"
    )


def inject_source_faults(
    blocks: Iterable[Any],
    injector: Optional[FaultInjector],
    site: str,
    poll_interval: float = 0.05,
    start_index: int = 0,
) -> Iterator[Any]:
    """Wrap a block iterator with the source-side fault hooks.

    Consults the injector before each block: a stall sleeps for the
    scheduled number of polls, a disconnect raises
    :class:`ConnectionError` (the supervised consumers treat it exactly
    like a dropped feed).  ``start_index`` lets a reconnecting source
    keep its global block numbering.
    """
    if injector is None:
        yield from blocks
        return
    index = start_index
    for block in blocks:
        polls = injector.stall_polls(site, index)
        if polls:
            time.sleep(polls * poll_interval)
        if injector.source_fault(site, index) is not None:
            raise ConnectionError(
                f"injected disconnect at {site} block {index}"
            )
        yield block
        index += 1


__all__ = [
    "FaultInjected",
    "FaultInjector",
    "FiredFault",
    "coerce_injector",
    "inject_source_faults",
]
