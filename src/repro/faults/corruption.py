"""Deterministic file corruption for cache-fault injection.

:func:`corrupt_entry` mutates a cache entry on disk the same way every
time (so a "corrupted sweep cache" chaos test is replayable).  The
seeded retry backoff that used to live here moved to
:mod:`repro.faults.backoff`; the name is re-exported for existing
importers.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.faults.backoff import backoff_delay
from repro.faults.spec import CORRUPTION_MODES


def corrupt_entry(
    path: Path, mode: str = "truncate", seed: int = 0
) -> None:
    """Deterministically corrupt the file at ``path`` in place.

    ``"truncate"`` keeps the first half of the bytes (a partial write,
    the classic crash-mid-flush shape); ``"garbage"`` overwrites the
    file with seeded non-JSON bytes (bit rot / cross-format clobber).
    """
    if mode not in CORRUPTION_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; "
            f"known modes: {list(CORRUPTION_MODES)}"
        )
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
    else:
        rng = random.Random(seed)
        size = max(1, len(data))
        path.write_bytes(bytes(rng.getrandbits(8) for _ in range(size)))


__all__ = ["backoff_delay", "corrupt_entry"]
