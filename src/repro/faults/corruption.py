"""Deterministic file corruption and seeded retry backoff.

Two small primitives the fault framework and the fault-tolerant layers
share: :func:`corrupt_entry` mutates a cache entry on disk the same way
every time (so a "corrupted sweep cache" chaos test is replayable), and
:func:`backoff_delay` computes capped exponential backoff with jitter
drawn from an *injected* seeded RNG — the retry schedule of a
supervised source is as deterministic as its estimates.
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.faults.spec import CORRUPTION_MODES


def corrupt_entry(
    path: Path, mode: str = "truncate", seed: int = 0
) -> None:
    """Deterministically corrupt the file at ``path`` in place.

    ``"truncate"`` keeps the first half of the bytes (a partial write,
    the classic crash-mid-flush shape); ``"garbage"`` overwrites the
    file with seeded non-JSON bytes (bit rot / cross-format clobber).
    """
    if mode not in CORRUPTION_MODES:
        raise ValueError(
            f"unknown corruption mode {mode!r}; "
            f"known modes: {list(CORRUPTION_MODES)}"
        )
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
    else:
        rng = random.Random(seed)
        size = max(1, len(data))
        path.write_bytes(bytes(rng.getrandbits(8) for _ in range(size)))


def backoff_delay(
    attempt: int,
    *,
    base: float,
    cap: float,
    rng: random.Random,
) -> float:
    """Capped exponential backoff with seeded jitter.

    ``attempt`` counts from zero.  The full delay doubles per attempt
    up to ``cap``; the returned delay is jittered into the upper half
    of that window (``[0.5, 1.0) * full``) so a fleet of reconnecting
    sources does not thundering-herd a recovering server — with the
    jitter drawn from the *injected* ``rng``, never from OS entropy.
    """
    if base <= 0.0:
        raise ValueError("base must be positive")
    if cap < base:
        raise ValueError("cap must be >= base")
    full = min(cap, base * (2.0 ** attempt))
    return full * (0.5 + 0.5 * rng.random())
