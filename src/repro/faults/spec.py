"""Declarative fault plans: injected failures are data, not monkeypatches.

A :class:`FaultPlan` freezes a deterministic schedule of failures —
crash the worker running task *k*, raise on task *k*, disconnect a
source after *m* blocks, stall a source for *t* polls, corrupt a cache
entry — into a hashable value object with a lossless JSON round trip,
exactly like :class:`repro.api.RunSpec` freezes an experiment.  The
same plan over the same seeds reproduces the same failure sequence, so
a chaos test is as replayable as the estimate it perturbs.

Faults enter through *explicit hooks* (the resilient pool layer, the
serve sources, the sweep cache), never through monkeypatching: the
production code paths exercised under fault injection are byte-for-byte
the paths that run in production.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Tuple

#: The fault taxonomy (docs/robustness.md documents each class).
FAULT_KINDS = (
    "crash-worker",
    "raise-task",
    "disconnect-source",
    "stall-source",
    "corrupt-cache",
    "crash-worker-midcell",
    "stall-heartbeat",
    "steal-lease",
)

#: Cache-entry corruption modes (``corrupt-cache`` only).
CORRUPTION_MODES = ("truncate", "garbage")

#: Kinds addressed by task index through the resilient pool layer.
TASK_KINDS = ("crash-worker", "raise-task")

#: Kinds addressed by block index through a serve source.
SOURCE_KINDS = ("disconnect-source", "stall-source")

#: Kinds addressed through the distributed sweep fabric (site
#: ``"distrib"``): SIGKILL a sweep worker after it claims its ``at``-th
#: cell, skip heartbeat touches so a live lease goes stale, or claim a
#: fresh lease as if it were stale (a forced double-claim).
DISTRIB_KINDS = ("crash-worker-midcell", "stall-heartbeat", "steal-lease")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    site:
        Injection-site label (``"replication"``, ``"sweep"``,
        ``"shard"``, ``"serve-source"``, ...); ``""`` matches every
        site that consults the plan.
    at:
        Zero-based trigger index: the pool task index for task kinds,
        the delivered-block index for source kinds (the fault fires at
        the first block whose index is ``>= at``, so a resumed stream
        re-triggers only while ``times`` lasts), the claim index for
        ``crash-worker-midcell`` / ``steal-lease`` and the heartbeat
        index for ``stall-heartbeat``.  Unused by ``corrupt-cache``
        (corruption is applied to an entry by the test harness, not an
        index).
    times:
        How many times the fault fires before burning out.  For
        ``stall-source`` this is instead the stall length in polls and
        for ``stall-heartbeat`` the number of heartbeat touches to
        skip (a stall is one fault occurrence).
    mode:
        Corruption mode for ``corrupt-cache`` (one of
        :data:`CORRUPTION_MODES`); ignored by other kinds.
    """

    kind: str
    site: str = ""
    at: int = 0
    times: int = 1
    mode: str = "truncate"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known kinds: {list(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.times <= 0:
            raise ValueError("times must be positive")
        if self.mode not in CORRUPTION_MODES:
            raise ValueError(
                f"unknown corruption mode {self.mode!r}; "
                f"known modes: {list(CORRUPTION_MODES)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        unknown = [key for key in data if key not in known]
        if unknown:
            raise ValueError(
                f"unknown FaultSpec fields: {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` failures.

    Attributes
    ----------
    faults:
        The scheduled failures, consulted in order at every hook.
    seed:
        Seed of any randomness a fault needs (e.g. the ``"garbage"``
        corruption byte stream); the plan itself is fully deterministic.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists/iterables from callers and from_dict.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise ValueError(
                    f"faults entries must be FaultSpec, got {fault!r}"
                )

    # ------------------------------------------------------------------
    # Serialization (lossless JSON round trip, like RunSpec)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "faults": [fault.to_dict() for fault in self.faults],
            "seed": self.seed,
        }

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = [key for key in data if key not in known]
        if unknown:
            raise ValueError(
                f"unknown FaultPlan fields: {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        payload = dict(data)
        faults = payload.pop("faults", ())
        return cls(
            faults=tuple(
                fault
                if isinstance(fault, FaultSpec)
                else FaultSpec.from_dict(fault)
                for fault in faults
            ),
            **payload,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "FaultPlan":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)


__all__ = [
    "CORRUPTION_MODES",
    "DISTRIB_KINDS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "SOURCE_KINDS",
    "TASK_KINDS",
]
