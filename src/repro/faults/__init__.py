"""Seeded, deterministic fault injection — and the tolerance it proves.

This package is the failure half of the reproduction's determinism
story.  Tasks are pure functions of their seeds, so a retried task
returns the same bits as an unfaulted one; a :class:`FaultPlan`
schedules worker crashes, task exceptions, source disconnects, stalls
and cache corruption deterministically, and the chaos acceptance suite
(``pytest -m chaos``) asserts the resulting estimates are bit-identical
to the fault-free oracle.  See ``docs/robustness.md``.
"""

from repro.faults.backoff import backoff_delay
from repro.faults.corruption import corrupt_entry
from repro.faults.injector import (
    FaultInjected,
    FaultInjector,
    FiredFault,
    coerce_injector,
    inject_source_faults,
)
from repro.faults.spec import (
    CORRUPTION_MODES,
    DISTRIB_KINDS,
    FAULT_KINDS,
    SOURCE_KINDS,
    TASK_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "CORRUPTION_MODES",
    "DISTRIB_KINDS",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "SOURCE_KINDS",
    "TASK_KINDS",
    "backoff_delay",
    "coerce_injector",
    "corrupt_entry",
    "inject_source_faults",
]
