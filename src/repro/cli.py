"""Command-line interface: ``python -m repro <command>``.

Every stream-driving command is a thin veneer over the declarative
:mod:`repro.api` facade: the arguments are packed into a
:class:`~repro.api.spec.RunSpec`, executed by ``repro.api.run`` (one
engine-driven pass, a tracking pass, or a replicated pass through the
process pool), and the resulting :class:`~repro.api.execution.RunReport`
is printed — human-readable by default, machine-readable with ``--json``.

Commands:

* ``stats``      exact triangle/wedge/clustering (and optional 4-node
                 motif census) of an edge-list file — the ground-truth
                 side;
* ``sample``     one-pass GPS sampling of an edge-list stream with
                 in-stream estimates, optionally checkpointing the full
                 sampler state to JSON;
* ``estimate``   retrospective (post-stream) estimation from a saved
                 checkpoint: triangles/wedges/clustering and, on request,
                 k-cliques, k-stars and the motif census;
* ``track``      checkpointed real-time tracking of a stream (estimate vs
                 exact at evenly spaced points) for any registered method;
* ``replicate``  R independent (stream, sampler) seeded replications of
                 any registered method fanned across worker processes;
                 reports mean / variance / 95% CI of its estimates — the
                 paper's error-bar protocol;
* ``methods``    list the registered stream-sampling methods;
* ``weights``    list the registered weight functions;
* ``reproduce``  regenerate the paper's tables and figures.

Methods and weights come from the :mod:`repro.api.registry`; anything a
plugin registers is immediately drivable here.  Edge-list format: two
whitespace-separated node ids per line, ``#``/``%`` comments, optional
``.gz``; extra columns ignored.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api.execution import replicate as run_replicated
from repro.api.execution import run
from repro.api.registry import (
    get_weight,
    method_names,
    method_specs,
    weight_names,
    weight_specs,
)
from repro.api.spec import RunSpec
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.estimates import GraphEstimates
from repro.core.in_stream import InStreamEstimator
from repro.core.local import LocalTriangleEstimator
from repro.core.motifs import MotifCensusEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.subgraphs import CliqueEstimator, StarEstimator
from repro.experiments import figure1, figure2, figure3, table1, table2, table3
from repro.graph.exact import compute_statistics
from repro.graph.io import read_edge_list
from repro.graph.motifs import count_motifs

ARTEFACTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
}

#: Friendly row labels for well-known replication metrics.
_METRIC_LABELS = {
    "in_stream_triangles": "triangles in-stream",
    "post_stream_triangles": "triangles post-stream",
    "in_stream_wedges": "wedges in-stream",
    "in_stream_clustering": "clustering in-stream",
}


def _artefact(value: str) -> str:
    """Argparse ``type`` validating artefact names (zero artefacts = all)."""
    if value not in ARTEFACTS:
        choices = ", ".join(sorted(ARTEFACTS))
        raise argparse.ArgumentTypeError(
            f"unknown artefact {value!r} (choose from: {choices})"
        )
    return value


def _add_weight_option(
    parser: argparse.ArgumentParser, default: Optional[str] = None
) -> None:
    parser.add_argument(
        "--weight", choices=sorted(weight_names()), default=default,
        help="registered weight function (GPS-family methods only; "
             "default: the method's own default, triangle for GPS)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph Priority Sampling for massive graph streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="exact statistics of an edge list")
    stats.add_argument("path")
    stats.add_argument("--motifs", action="store_true",
                       help="also count the six connected 4-node motifs")

    sample = commands.add_parser("sample", help="GPS-sample an edge-list stream")
    sample.add_argument("path")
    sample.add_argument("-m", "--capacity", type=int, required=True)
    _add_weight_option(sample, default="triangle")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--stream-seed", type=int, default=None,
                        help="permute the stream with this seed "
                             "(default: keep file order)")
    sample.add_argument("-o", "--output", help="write a resumable checkpoint here")
    sample.add_argument("--json", action="store_true",
                        help="emit the RunReport as JSON")

    estimate = commands.add_parser(
        "estimate", help="post-stream estimation from a checkpoint"
    )
    estimate.add_argument("checkpoint")
    _add_weight_option(estimate, default="triangle")
    estimate.add_argument("--motifs", action="store_true")
    estimate.add_argument("--cliques", type=int, metavar="K",
                          help="also estimate K-clique counts")
    estimate.add_argument("--stars", type=int, metavar="K",
                          help="also estimate K-star counts")
    estimate.add_argument("--top-nodes", type=int, metavar="N",
                          help="show the N nodes with largest local "
                               "triangle estimates")

    track = commands.add_parser("track", help="track estimates over a stream")
    track.add_argument("path")
    track.add_argument("-m", "--capacity", type=int, required=True)
    track.add_argument("--method", choices=sorted(method_names()), default="gps",
                       help="registered method to track (default: gps)")
    track.add_argument("--checkpoints", type=int, default=10)
    _add_weight_option(track)
    track.add_argument("--seed", type=int, default=0)
    track.add_argument("--stream-seed", type=int, default=None,
                       help="permute the stream with this seed "
                            "(default: keep file order)")
    track.add_argument("--json", action="store_true",
                       help="emit the RunReport as JSON")

    replicate = commands.add_parser(
        "replicate", help="parallel multi-seed replications with error bars"
    )
    replicate.add_argument("path")
    replicate.add_argument("-m", "--capacity", type=int, required=True)
    replicate.add_argument("--method", choices=sorted(method_names()),
                           default="gps",
                           help="registered method to replicate (default: gps)")
    replicate.add_argument("-R", "--replications", type=int, default=8)
    replicate.add_argument("--workers", type=int, default=None,
                           help="process-pool size (0 runs inline)")
    _add_weight_option(replicate)
    replicate.add_argument("--stream-seed", type=int, default=0)
    replicate.add_argument("--sampler-seed", type=int, default=10_000)
    replicate.add_argument("--json", action="store_true",
                           help="emit the RunReport as JSON")

    commands.add_parser("methods", help="list registered sampling methods")
    commands.add_parser("weights", help="list registered weight functions")

    reproduce = commands.add_parser(
        "reproduce", help="regenerate the paper's tables and figures"
    )
    reproduce.add_argument(
        "artefacts", nargs="*", type=_artefact, default=[],
        metavar="artefact",
        help=f"subset of {', '.join(sorted(ARTEFACTS))} (default: all)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "stats": _cmd_stats,
        "sample": _cmd_sample,
        "estimate": _cmd_estimate,
        "track": _cmd_track,
        "replicate": _cmd_replicate,
        "methods": _cmd_methods,
        "weights": _cmd_weights,
        "reproduce": _cmd_reproduce,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------
def _cmd_stats(args) -> int:
    graph = read_edge_list(args.path)
    stats = compute_statistics(graph)
    print(f"nodes      {stats.num_nodes}")
    print(f"edges      {stats.num_edges}")
    print(f"triangles  {stats.triangles}")
    print(f"wedges     {stats.wedges}")
    print(f"clustering {stats.clustering:.6f}")
    if args.motifs:
        for name, count in count_motifs(graph).as_dict().items():
            print(f"{name:<16} {count}")
    return 0


def _cmd_sample(args) -> int:
    # gps-in-stream, not the shared-sample "gps": sample prints in-stream
    # estimates only, so the report must not pay an Algorithm-2 pass.
    spec = RunSpec(
        source=args.path,
        method="gps-in-stream",
        budget=args.capacity,
        weight=args.weight,
        stream_seed=args.stream_seed,
        sampler_seed=args.seed,
    )
    report = run(spec)
    if args.json:
        print(report.to_json())
    else:
        _print_estimates("in-stream estimates", report.in_stream)
    if args.output:
        path = save_checkpoint(report.counter, args.output)
        # Keep --json stdout machine-readable; the notice goes to stderr.
        notice_stream = sys.stderr if args.json else sys.stdout
        print(f"checkpoint written to {path}", file=notice_stream)
    return 0


def _cmd_estimate(args) -> int:
    loaded = load_checkpoint(
        args.checkpoint, weight_fn=get_weight(args.weight).factory()
    )
    sampler = loaded.sampler if isinstance(loaded, InStreamEstimator) else loaded
    estimates = PostStreamEstimator(sampler).estimate()
    _print_estimates("post-stream estimates", estimates)
    if args.cliques:
        clique = CliqueEstimator(sampler, size=args.cliques).estimate()
        lb, ub = clique.confidence_bounds()
        print(f"{args.cliques}-cliques  {clique.value:.1f}  95% CI [{lb:.1f}, {ub:.1f}]")
    if args.stars:
        star = StarEstimator(sampler, leaves=args.stars).estimate()
        print(f"{args.stars}-stars    {star.value:.1f}")
    if args.motifs:
        for name, estimate in MotifCensusEstimator(sampler).estimate().items():
            print(f"{name:<16} {estimate.value:.1f}")
    if args.top_nodes:
        print(f"top {args.top_nodes} nodes by local triangle estimate:")
        for node, count in LocalTriangleEstimator(sampler).top_nodes(args.top_nodes):
            print(f"  {node!r}: {count:.1f}")
    return 0


def _cmd_track(args) -> int:
    spec = RunSpec(
        source=args.path,
        method=args.method,
        budget=args.capacity,
        weight=args.weight,
        stream_seed=args.stream_seed,
        sampler_seed=args.seed,
        checkpoints=args.checkpoints,
    )
    report = run(spec)
    if args.json:
        print(report.to_json())
        return 0
    print(f"{'t':>10}  {'triangles':>12}  {'estimate':>12}  {'ARE':>8}")
    for point in report.tracking:
        err = 0.0 if point.are == float("inf") else point.are
        print(
            f"{point.position:>10}  {point.exact_triangles:>12}  "
            f"{point.estimate:>12.0f}  {err:>8.2%}"
        )
    return 0


def _cmd_replicate(args) -> int:
    spec = RunSpec(
        source=args.path,
        method=args.method,
        budget=args.capacity,
        weight=args.weight,
        stream_seed=args.stream_seed,
        sampler_seed=args.sampler_seed,
        replications=args.replications,
        workers=args.workers,
    )
    report = run_replicated(spec)
    if args.json:
        print(report.to_json())
        return 0
    print(
        f"{report.replications} replications over {report.edges} edges "
        f"(m={args.capacity}, method={args.method}, "
        f"weight={args.weight or 'default'}, workers={report.workers})"
    )
    print(f"{'metric':<22} {'mean':>14} {'std':>12}  95% CI")
    for name, stats in report.metrics.items():
        label = _METRIC_LABELS.get(name, name)
        std = stats.variance ** 0.5
        print(
            f"{label:<22} {stats.mean:>14.2f} {std:>12.2f}  "
            f"[{stats.ci_low:.2f}, {stats.ci_high:.2f}]"
        )
    return 0


def _cmd_methods(args) -> int:
    width = max(len(name) for name in method_names())
    for spec in method_specs():
        weight_tag = "  [weighted]" if spec.uses_weight else ""
        print(f"{spec.name:<{width}}  {spec.description}{weight_tag}")
    return 0


def _cmd_weights(args) -> int:
    width = max(len(name) for name in weight_names())
    for spec in weight_specs():
        print(f"{spec.name:<{width}}  {spec.description}")
    return 0


def _cmd_reproduce(args) -> int:
    names = args.artefacts or sorted(ARTEFACTS)
    for name in names:
        print(f"\n=== {name} {'=' * (60 - len(name))}")
        ARTEFACTS[name].main([])
    return 0


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _print_estimates(title: str, estimates: GraphEstimates) -> None:
    print(title)
    print(
        f"  processed {estimates.stream_position} edges, sampled "
        f"{estimates.sample_size}, threshold z*={estimates.threshold:.4g}"
    )
    for label, estimate in (
        ("triangles", estimates.triangles),
        ("wedges", estimates.wedges),
        ("clustering", estimates.clustering),
    ):
        lb, ub = estimate.confidence_bounds()
        print(f"  {label:<11}{estimate.value:14.2f}   95% CI [{lb:.2f}, {ub:.2f}]")
