"""Command-line interface: ``python -m repro <command>``.

Every stream-driving command is a thin veneer over the declarative
:mod:`repro.api` facade: the arguments are packed into a
:class:`~repro.api.spec.RunSpec`, executed by ``repro.api.run`` (one
engine-driven pass, a tracking pass, or a replicated pass through the
process pool), and the resulting :class:`~repro.api.execution.RunReport`
is printed — human-readable by default, machine-readable with ``--json``.

Commands:

* ``stats``      exact triangle/wedge/clustering (and optional 4-node
                 motif census) of an edge-list file — the ground-truth
                 side;
* ``sample``     one-pass GPS sampling of an edge-list stream with
                 in-stream estimates, optionally checkpointing the full
                 sampler state to JSON;
* ``estimate``   retrospective (post-stream) estimation from a saved
                 checkpoint: triangles/wedges/clustering and, on request,
                 k-cliques, k-stars and the motif census;
* ``track``      checkpointed real-time tracking of a stream (estimate vs
                 exact at evenly spaced points) for any registered method;
* ``replicate``  R independent (stream, sampler) seeded replications of
                 any registered method fanned across worker processes;
                 reports mean / variance / 95% CI of its estimates — the
                 paper's error-bar protocol;
* ``sweep``      a whole evaluation grid (sources × methods × budgets ×
                 weights × shards × seeds) in one command: cells fan across a
                 shared process pool, exact ground truth is cached
                 content-addressed, ``--resume`` skips already-computed
                 cells; per-cell error summaries, CSV/JSON export;
                 ``--distributed N`` coordinates N sweep-worker
                 processes over a lease-based work queue instead
                 (crash-tolerant, bit-identical — docs/distributed.md);
* ``sweep-worker``  join a distributed sweep: claim cells from a queue
                 directory, execute, publish content-addressed reports,
                 release; survivors reclaim stale leases of dead peers;
* ``serve``      long-running sampling service: background ingestion
                 (file / file tail / synthetic generator / TCP feed)
                 with concurrent JSON-lines estimate queries over
                 stdin/stdout or TCP — see ``docs/serving.md``;
* ``methods``    list the registered stream-sampling methods
                 (``--markdown`` emits the ``docs/methods.md`` catalog);
* ``weights``    list the registered weight functions;
* ``lint``       static invariant analysis of the source tree (RNG,
                 dtype, shared-memory lifecycle, determinism, spec and
                 registry discipline — see ``docs/invariants.md``,
                 which ``--markdown`` emits); exits nonzero on findings;
* ``bench``      regenerate the BENCH_*.json performance trajectories
                 (``engine``/``replication``/``sweep``/``serve``/``shard``
                 targets, ``--quick`` for CI-smoke sizes);
* ``reproduce``  regenerate the paper's tables and figures.

GPS-family commands accept ``--core compact|object`` selecting the
reservoir implementation (slot-based struct-of-arrays vs the boxed
reference); the two are bit-identical under shared seeds, so the flag
only changes speed.

Methods and weights come from the :mod:`repro.api.registry`; anything a
plugin registers is immediately drivable here.  Edge-list format: two
whitespace-separated node ids per line, ``#``/``%`` comments, optional
``.gz``; extra columns ignored.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api.execution import replicate as run_replicated
from repro.api.execution import run
from repro.api.registry import (
    get_weight,
    method_names,
    method_specs,
    registry_markdown,
    weight_names,
    weight_specs,
)
from repro.api.spec import RunSpec
from repro.api.sweep import BUDGET_POLICIES, SweepSpec, run_sweep
from repro.core.compact import CORES, DEFAULT_CORE
from repro.engine.stream_engine import DEFAULT_PIPELINE, PIPELINES
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.estimates import GraphEstimates
from repro.core.in_stream import InStreamEstimator
from repro.core.local import LocalTriangleEstimator
from repro.core.motifs import MotifCensusEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.subgraphs import CliqueEstimator, StarEstimator
from repro.experiments import figure1, figure2, figure3, table1, table2, table3
from repro.graph.exact import compute_statistics
from repro.graph.io import read_edge_list
from repro.graph.motifs import count_motifs

ARTEFACTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
}

#: Friendly row labels for well-known replication metrics.
_METRIC_LABELS = {
    "in_stream_triangles": "triangles in-stream",
    "post_stream_triangles": "triangles post-stream",
    "in_stream_wedges": "wedges in-stream",
    "in_stream_clustering": "clustering in-stream",
}


def _artefact(value: str) -> str:
    """Argparse ``type`` validating artefact names (zero artefacts = all)."""
    if value not in ARTEFACTS:
        choices = ", ".join(sorted(ARTEFACTS))
        raise argparse.ArgumentTypeError(
            f"unknown artefact {value!r} (choose from: {choices})"
        )
    return value


def _add_weight_option(
    parser: argparse.ArgumentParser, default: Optional[str] = None
) -> None:
    parser.add_argument(
        "--weight", choices=sorted(weight_names()), default=default,
        help="registered weight function (GPS-family methods only; "
             "default: the method's own default, triangle for GPS)",
    )


def _add_core_option(
    parser: argparse.ArgumentParser, default: Optional[str] = DEFAULT_CORE
) -> None:
    parser.add_argument(
        "--core", choices=CORES, default=default,
        help="GPS reservoir core: 'compact' slot arrays (default) or the "
             "'object' reference — bit-identical results, different speed",
    )


def _add_pipeline_option(
    parser: argparse.ArgumentParser,
    default: Optional[str] = DEFAULT_PIPELINE,
) -> None:
    parser.add_argument(
        "--pipeline", choices=PIPELINES, default=default,
        help="stream pipeline: 'chunked' columnar blocks through the "
             "vectorised admission gate where supported (default) or "
             "'scalar' tuple loops — bit-identical results; "
             "label-reading weights fall back to scalar automatically",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph Priority Sampling for massive graph streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="exact statistics of an edge list")
    stats.add_argument("path")
    stats.add_argument("--motifs", action="store_true",
                       help="also count the six connected 4-node motifs")

    sample = commands.add_parser("sample", help="GPS-sample an edge-list stream")
    sample.add_argument("path")
    sample.add_argument("-m", "--capacity", type=int, required=True)
    _add_weight_option(sample, default="triangle")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--stream-seed", type=int, default=None,
                        help="permute the stream with this seed "
                             "(default: keep file order)")
    sample.add_argument("-o", "--output", help="write a resumable checkpoint here")
    _add_core_option(sample)
    _add_pipeline_option(sample)
    sample.add_argument("--json", action="store_true",
                        help="emit the RunReport as JSON")

    estimate = commands.add_parser(
        "estimate", help="post-stream estimation from a checkpoint"
    )
    estimate.add_argument("checkpoint")
    _add_weight_option(estimate, default="triangle")
    estimate.add_argument("--motifs", action="store_true")
    estimate.add_argument("--cliques", type=int, metavar="K",
                          help="also estimate K-clique counts")
    estimate.add_argument("--stars", type=int, metavar="K",
                          help="also estimate K-star counts")
    estimate.add_argument("--top-nodes", type=int, metavar="N",
                          help="show the N nodes with largest local "
                               "triangle estimates")

    track = commands.add_parser("track", help="track estimates over a stream")
    track.add_argument("path")
    track.add_argument("-m", "--capacity", type=int, required=True)
    track.add_argument("--method", choices=sorted(method_names()), default="gps",
                       help="registered method to track (default: gps)")
    track.add_argument("--checkpoints", type=int, default=10)
    _add_weight_option(track)
    track.add_argument("--seed", type=int, default=0)
    track.add_argument("--stream-seed", type=int, default=None,
                       help="permute the stream with this seed "
                            "(default: keep file order)")
    _add_core_option(track)
    _add_pipeline_option(track)
    track.add_argument("--json", action="store_true",
                       help="emit the RunReport as JSON")

    replicate = commands.add_parser(
        "replicate", help="parallel multi-seed replications with error bars"
    )
    replicate.add_argument("path")
    replicate.add_argument("-m", "--capacity", type=int, required=True)
    replicate.add_argument("--method", choices=sorted(method_names()),
                           default="gps",
                           help="registered method to replicate (default: gps)")
    replicate.add_argument("-R", "--replications", type=int, default=8)
    replicate.add_argument("--workers", type=int, default=None,
                           help="process-pool size (0 runs inline)")
    replicate.add_argument("--shards", type=int, default=1,
                           help="partition each pass across this many "
                                "samplers via the seeded edge-hash router "
                                "and merge post-stream (gps-post only; "
                                "default: 1, the single-sampler path)")
    _add_weight_option(replicate)
    replicate.add_argument("--stream-seed", type=int, default=0)
    replicate.add_argument("--sampler-seed", type=int, default=10_000)
    _add_core_option(replicate)
    _add_pipeline_option(replicate)
    replicate.add_argument("--json", action="store_true",
                           help="emit the RunReport as JSON")

    sweep = commands.add_parser(
        "sweep", help="run a whole method × budget × source grid"
    )
    sweep.add_argument("--spec", metavar="FILE",
                       help="load the grid from a SweepSpec JSON file "
                            "(grid flags are then rejected)")
    sweep.add_argument("--source", nargs="+", default=None,
                       help="dataset names and/or edge-list paths")
    sweep.add_argument("--method", nargs="+", default=None,
                       help="registered methods (default: gps)")
    sweep.add_argument("-m", "--budget", nargs="+", type=int, default=None,
                       help="memory budgets (default: 1000)")
    sweep.add_argument("--weight", nargs="+", default=None,
                       choices=sorted(weight_names()),
                       help="weights for weight-aware methods "
                            "(default: each method's own default)")
    sweep.add_argument("--shards", nargs="+", type=int, default=None,
                       help="shard counts for shardable methods "
                            "(variance-vs-S curves; default: 1)")
    # Defaults are applied when the SweepSpec is built, not here: None
    # means "not passed", which lets --spec reject any explicit flag —
    # even one spelled at its default value.
    sweep.add_argument("--runs", type=int, default=None,
                       help="seed replications per cell (default: 1)")
    sweep.add_argument("--stream-seed", type=int, default=None,
                       help="base stream seed (default: 0)")
    sweep.add_argument("--sampler-seed", type=int, default=None,
                       help="base sampler seed (default: 1)")
    sweep.add_argument("--checkpoints", type=int, default=None,
                       help="tracking marks per run (default: 0, disabled)")
    sweep.add_argument("--budget-policy", choices=BUDGET_POLICIES,
                       default=None,
                       help="what to do with budgets beyond a source's "
                            "edge count (default: keep)")
    sweep.add_argument("--workers", type=int, default=None,
                       help="shared process-pool size (0 runs inline)")
    _add_core_option(sweep, default=None)
    _add_pipeline_option(sweep, default=None)
    sweep.add_argument("--cache", metavar="DIR", default=".repro-cache",
                       help="ground-truth/cell cache directory "
                            "(default: .repro-cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="keep everything in memory; nothing on disk")
    sweep.add_argument("--resume", action="store_true",
                       help="reuse cached cell reports instead of "
                            "re-executing them (trusts the cache: clear "
                            "the cache dir after editing estimator code)")
    sweep.add_argument("--save-spec", metavar="FILE",
                       help="also write the expanded SweepSpec JSON here")
    sweep.add_argument("--csv", metavar="FILE",
                       help="write the per-cell CSV matrix here")
    sweep.add_argument("--json", action="store_true",
                       help="emit the SweepReport as JSON")
    sweep.add_argument("--distributed", type=int, default=None, metavar="N",
                       help="coordinate N sweep-worker processes over the "
                            "cache directory instead of an in-process pool "
                            "(lease-based work queue; results bit-identical "
                            "— see docs/distributed.md)")
    sweep.add_argument("--lease-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="seconds without a heartbeat before a worker's "
                            "cell lease is reclaimable (with --distributed; "
                            "default: 30)")
    sweep.add_argument("--heartbeat-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="seconds between lease heartbeat touches "
                            "(with --distributed; default: 1)")

    sweep_worker = commands.add_parser(
        "sweep-worker",
        help="join a distributed sweep: claim, execute and publish cells "
             "from a lease-based work queue",
    )
    sweep_worker.add_argument("--queue", metavar="DIR", required=True,
                              help="queue directory (the coordinator's "
                                   "<cache>/queue)")
    sweep_worker.add_argument("--worker-id", default=None, metavar="ID",
                              help="stable worker identity carried on "
                                   "leases and summaries (default: w<pid>)")
    sweep_worker.add_argument("--max-cells", type=int, default=None,
                              metavar="N",
                              help="stop after executing N cells "
                                   "(default: run until the queue drains)")
    sweep_worker.add_argument("--faults", metavar="FILE", default=None,
                              help="FaultPlan JSON driving the distrib "
                                   "fault hooks (chaos testing only)")
    sweep_worker.add_argument("--json", action="store_true",
                              help="emit the worker summary as JSON")

    serve = commands.add_parser(
        "serve", help="live sampling service answering JSON-lines queries"
    )
    serve.add_argument("source", nargs="?", default=None,
                       help="edge-list path, dataset name, 'synthetic', or "
                            "tcp://host:port")
    serve.add_argument("--spec", metavar="FILE",
                       help="load a ServeSpec JSON file (other service "
                            "flags are then rejected)")
    serve.add_argument("-m", "--capacity", type=int, default=None,
                       help="reservoir capacity (default: 1000)")
    serve.add_argument("--method", choices=sorted(method_names()),
                       default=None,
                       help="registered method to serve (default: gps)")
    _add_weight_option(serve)
    serve.add_argument("--seed", type=int, default=None,
                       help="sampler seed (default: 1)")
    serve.add_argument("--stream-seed", type=int, default=None,
                       help="stream permutation / generator seed "
                            "(default: 0; negative keeps source order)")
    serve.add_argument("--chunk-size", type=int, default=None,
                       help="ingestion block size in edges")
    serve.add_argument("--queue-chunks", type=int, default=None,
                       help="ingestion queue bound in blocks "
                            "(backpressure knob, default: 8)")
    serve.add_argument("--snapshot-every", type=int, default=None,
                       help="publish a snapshot every N blocks (default: 1)")
    serve.add_argument("--max-edges", type=int, default=None,
                       help="stop ingesting after this many edges")
    serve.add_argument("--nodes", type=int, default=None,
                       help="node population of the synthetic source "
                            "(default: 10000)")
    serve.add_argument("--follow", action="store_true",
                       help="tail a file source for appended edges")
    serve.add_argument("--port", type=int, default=None, metavar="PORT",
                       help="answer queries over TCP on PORT (0 binds an "
                            "ephemeral port) instead of stdin/stdout")

    lint = commands.add_parser(
        "lint", help="static invariant analysis (AST lint) of Python sources"
    )
    lint.add_argument("paths", nargs="*", default=["src"], metavar="path",
                      help="files and/or directories to lint (default: src)")
    lint.add_argument("--select", nargs="+", default=None, metavar="RULE",
                      help="run only these rule ids (comma- or "
                           "space-separated)")
    lint.add_argument("--ignore", nargs="+", default=None, metavar="RULE",
                      help="skip these rule ids")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (default: text)")
    lint.add_argument("--markdown", action="store_true",
                      help="emit the docs/invariants.md rule catalog "
                           "instead of linting")

    methods = commands.add_parser(
        "methods", help="list registered sampling methods"
    )
    methods.add_argument("--markdown", action="store_true",
                         help="emit the docs/methods.md catalog instead")
    commands.add_parser("weights", help="list registered weight functions")

    bench = commands.add_parser(
        "bench", help="regenerate the BENCH_*.json performance benchmarks"
    )
    bench.add_argument("target",
                       choices=("engine", "replication", "sweep", "serve",
                                "shard"),
                       help="which benchmark to run")
    bench.add_argument("--quick", action="store_true",
                       help="CI-smoke sizes (same JSON schema)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timing repetitions (engine target)")
    bench.add_argument("-o", "--output", default=None,
                       help="output path (default: BENCH_<target>.json in "
                            "the current directory)")

    reproduce = commands.add_parser(
        "reproduce", help="regenerate the paper's tables and figures"
    )
    reproduce.add_argument(
        "artefacts", nargs="*", type=_artefact, default=[],
        metavar="artefact",
        help=f"subset of {', '.join(sorted(ARTEFACTS))} (default: all)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "stats": _cmd_stats,
        "sample": _cmd_sample,
        "estimate": _cmd_estimate,
        "track": _cmd_track,
        "replicate": _cmd_replicate,
        "sweep": _cmd_sweep,
        "sweep-worker": _cmd_sweep_worker,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
        "methods": _cmd_methods,
        "weights": _cmd_weights,
        "bench": _cmd_bench,
        "reproduce": _cmd_reproduce,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------
def _cmd_stats(args) -> int:
    graph = read_edge_list(args.path)
    stats = compute_statistics(graph)
    print(f"nodes      {stats.num_nodes}")
    print(f"edges      {stats.num_edges}")
    print(f"triangles  {stats.triangles}")
    print(f"wedges     {stats.wedges}")
    print(f"clustering {stats.clustering:.6f}")
    if args.motifs:
        for name, count in count_motifs(graph).as_dict().items():
            print(f"{name:<16} {count}")
    return 0


def _cmd_sample(args) -> int:
    # gps-in-stream, not the shared-sample "gps": sample prints in-stream
    # estimates only, so the report must not pay an Algorithm-2 pass.
    spec = RunSpec(
        source=args.path,
        method="gps-in-stream",
        budget=args.capacity,
        weight=args.weight,
        stream_seed=args.stream_seed,
        sampler_seed=args.seed,
        core=args.core,
        pipeline=args.pipeline,
    )
    report = run(spec)
    if args.json:
        print(report.to_json())
    else:
        _print_estimates("in-stream estimates", report.in_stream)
    if args.output:
        path = save_checkpoint(report.counter, args.output)
        # Keep --json stdout machine-readable; the notice goes to stderr.
        notice_stream = sys.stderr if args.json else sys.stdout
        print(f"checkpoint written to {path}", file=notice_stream)
    return 0


def _cmd_estimate(args) -> int:
    loaded = load_checkpoint(
        args.checkpoint, weight_fn=get_weight(args.weight).factory()
    )
    sampler = loaded.sampler if isinstance(loaded, InStreamEstimator) else loaded
    estimates = PostStreamEstimator(sampler).estimate()
    _print_estimates("post-stream estimates", estimates)
    if args.cliques:
        clique = CliqueEstimator(sampler, size=args.cliques).estimate()
        lb, ub = clique.confidence_bounds()
        print(f"{args.cliques}-cliques  {clique.value:.1f}  95% CI [{lb:.1f}, {ub:.1f}]")
    if args.stars:
        star = StarEstimator(sampler, leaves=args.stars).estimate()
        print(f"{args.stars}-stars    {star.value:.1f}")
    if args.motifs:
        for name, estimate in MotifCensusEstimator(sampler).estimate().items():
            print(f"{name:<16} {estimate.value:.1f}")
    if args.top_nodes:
        print(f"top {args.top_nodes} nodes by local triangle estimate:")
        for node, count in LocalTriangleEstimator(sampler).top_nodes(args.top_nodes):
            print(f"  {node!r}: {count:.1f}")
    return 0


def _cmd_track(args) -> int:
    spec = RunSpec(
        source=args.path,
        method=args.method,
        budget=args.capacity,
        weight=args.weight,
        stream_seed=args.stream_seed,
        sampler_seed=args.seed,
        checkpoints=args.checkpoints,
        core=args.core,
        pipeline=args.pipeline,
    )
    report = run(spec)
    if args.json:
        print(report.to_json())
        return 0
    print(f"{'t':>10}  {'triangles':>12}  {'estimate':>12}  {'ARE':>8}")
    for point in report.tracking:
        err = 0.0 if point.are == float("inf") else point.are
        print(
            f"{point.position:>10}  {point.exact_triangles:>12}  "
            f"{point.estimate:>12.0f}  {err:>8.2%}"
        )
    return 0


def _cmd_replicate(args) -> int:
    spec = RunSpec(
        source=args.path,
        method=args.method,
        budget=args.capacity,
        weight=args.weight,
        stream_seed=args.stream_seed,
        sampler_seed=args.sampler_seed,
        replications=args.replications,
        workers=args.workers,
        core=args.core,
        pipeline=args.pipeline,
        shards=args.shards,
    )
    report = run_replicated(spec)
    if args.json:
        print(report.to_json())
        return 0
    print(
        f"{report.replications} replications over {report.edges} edges "
        f"(m={args.capacity}, method={args.method}, "
        f"weight={args.weight or 'default'}, workers={report.workers})"
    )
    print(f"{'metric':<22} {'mean':>14} {'std':>12}  95% CI")
    for name, stats in report.metrics.items():
        label = _METRIC_LABELS.get(name, name)
        std = stats.variance ** 0.5
        print(
            f"{label:<22} {stats.mean:>14.2f} {std:>12.2f}  "
            f"[{stats.ci_low:.2f}, {stats.ci_high:.2f}]"
        )
    return 0


def _cmd_sweep(args) -> int:
    from pathlib import Path

    from repro.experiments.reporting import format_table

    if args.resume and args.no_cache:
        print("sweep: --resume needs the cache that --no-cache disables; "
              "drop one of them", file=sys.stderr)
        return 2
    if args.distributed is not None and args.no_cache:
        print("sweep: --distributed coordinates workers over the cache "
              "directory that --no-cache disables; drop one of them",
              file=sys.stderr)
        return 2
    if args.distributed is not None and args.workers is not None:
        print("sweep: --distributed replaces the in-process pool; "
              "--workers does not apply (cells run one per claim)",
              file=sys.stderr)
        return 2
    if args.distributed is None and (
        args.lease_timeout is not None
        or args.heartbeat_interval is not None
    ):
        print("sweep: --lease-timeout/--heartbeat-interval only apply "
              "with --distributed", file=sys.stderr)
        return 2
    if args.spec:
        # Every grid/execution field lives in the spec file; a flag
        # passed alongside it would be silently ignored, so reject any
        # explicitly-given one loudly (all parser defaults are None).
        overridden = [
            flag
            for flag, value in (
                ("--source", args.source),
                ("--method", args.method),
                ("--budget", args.budget),
                ("--weight", args.weight),
                ("--shards", args.shards),
                ("--runs", args.runs),
                ("--stream-seed", args.stream_seed),
                ("--sampler-seed", args.sampler_seed),
                ("--checkpoints", args.checkpoints),
                ("--budget-policy", args.budget_policy),
                ("--workers", args.workers),
                ("--core", args.core),
                ("--pipeline", args.pipeline),
            )
            if value is not None
        ]
        if overridden:
            print(f"sweep: --spec and {', '.join(overridden)} are "
                  f"mutually exclusive — edit the spec file instead",
                  file=sys.stderr)
            return 2
        spec = SweepSpec.from_json(Path(args.spec).read_text())
    else:
        if not args.source:
            print("sweep: --source is required (or load a grid with "
                  "--spec FILE)", file=sys.stderr)
            return 2
        spec = SweepSpec(
            sources=tuple(args.source),
            methods=tuple(args.method) if args.method else ("gps",),
            budgets=tuple(args.budget) if args.budget else (1000,),
            weights=tuple(args.weight) if args.weight else (None,),
            shards=tuple(args.shards) if args.shards else (1,),
            runs=args.runs if args.runs is not None else 1,
            base_stream_seed=args.stream_seed
            if args.stream_seed is not None else 0,
            base_sampler_seed=args.sampler_seed
            if args.sampler_seed is not None else 1,
            checkpoints=args.checkpoints
            if args.checkpoints is not None else 0,
            budget_policy=args.budget_policy or "keep",
            workers=args.workers,
            core=args.core if args.core is not None else DEFAULT_CORE,
            pipeline=args.pipeline
            if args.pipeline is not None else DEFAULT_PIPELINE,
        )
    if args.save_spec:
        Path(args.save_spec).write_text(spec.to_json(indent=2) + "\n")

    if args.distributed is not None:
        from repro.distrib import DistribSpec, run_distributed_sweep

        distrib_kwargs = {"workers": args.distributed}
        if args.lease_timeout is not None:
            distrib_kwargs["lease_timeout"] = args.lease_timeout
        if args.heartbeat_interval is not None:
            distrib_kwargs["heartbeat_interval"] = args.heartbeat_interval
        try:
            distrib = DistribSpec(**distrib_kwargs)
        except ValueError as error:
            print(f"sweep: {error}", file=sys.stderr)
            return 2
        report = run_distributed_sweep(
            spec, cache_dir=args.cache, distrib=distrib,
            resume=args.resume,
        )
    else:
        report = run_sweep(
            spec,
            cache_dir=None if args.no_cache else args.cache,
            resume=args.resume,
        )

    notice_stream = sys.stderr if args.json else sys.stdout
    if args.csv:
        Path(args.csv).write_text(report.to_csv())
        print(f"cell matrix written to {args.csv}", file=notice_stream)
    if args.json:
        print(report.to_json())
        return 0

    body = []
    for cell in report.cells:
        tri = cell.triangles
        body.append([
            cell.key.source,
            cell.key.method,
            cell.key.budget,
            cell.key.weight or "-",
            cell.runs,
            "-" if tri is None else f"{tri.mean:.1f}",
            "-" if tri is None else f"[{tri.ci_low:.1f}, {tri.ci_high:.1f}]",
            "-" if cell.relative_error is None
            else f"{cell.relative_error:.4f}",
            f"{cell.update_time.mean:.2f}",
            f"{cell.cached_runs}/{cell.runs}",
        ])
    print(format_table(
        headers=["source", "method", "m", "weight", "runs",
                 "triangles (mean)", "95% CI", "ARE", "µs/edge", "cached"],
        rows=body,
        title=f"sweep — {len(report.cells)} cells in "
              f"{report.elapsed_seconds:.2f}s "
              f"(workers={report.workers})",
        align_left=(0, 1, 3),
    ))
    print(f"ground truth: {report.ground_truth_hits} cache hit(s), "
          f"{report.ground_truth_misses} exact recount(s)")
    print(f"cell reports: {report.cell_cache_hits} reused from cache, "
          f"{report.cell_cache_misses} executed")
    if report.distributed_workers:
        print(f"distributed: {report.distributed_workers} worker(s), "
              f"{report.leases_reclaimed} lease(s) reclaimed, "
              f"{report.cells_reexecuted} cell(s) re-executed")
    if report.skipped:
        names = ", ".join(
            f"{k.source}:{k.method}"
            + (f"[{k.weight}]" if k.weight else "")
            + f"@{k.budget}"
            for k in report.skipped
        )
        print(f"skipped (budget > |K|): {names}")
    if report.cache_dir:
        print(f"cache directory: {report.cache_dir}")
    return 0


def _cmd_sweep_worker(args) -> int:
    import json as json_module
    import os
    from pathlib import Path

    from repro.distrib import run_worker
    from repro.faults import FaultPlan

    queue_root = Path(args.queue)
    if not (queue_root / "manifest.json").exists():
        print(f"sweep-worker: no queue manifest under {queue_root} "
              f"(point --queue at the coordinator's <cache>/queue)",
              file=sys.stderr)
        return 2
    faults = None
    if args.faults:
        faults = FaultPlan.from_json(Path(args.faults).read_text())
    worker_id = args.worker_id or f"w{os.getpid()}"
    stats = run_worker(
        queue_root, worker_id, faults=faults, max_cells=args.max_cells
    )
    if args.json:
        print(json_module.dumps(stats.to_dict(), indent=2))
        return 0
    print(f"worker {stats.worker} (pid {stats.pid}): "
          f"{stats.executed} cell(s) executed, "
          f"{stats.reclaimed} lease(s) reclaimed, "
          f"{stats.reexecuted} re-executed")
    return 0


def _cmd_serve(args) -> int:
    from pathlib import Path

    from repro.serve import SamplingService, ServeSpec
    from repro.serve.protocol import serve_stdio, serve_tcp

    if args.spec:
        overridden = [
            flag
            for flag, value in (
                ("source", args.source),
                ("--capacity", args.capacity),
                ("--method", args.method),
                ("--weight", args.weight),
                ("--seed", args.seed),
                ("--stream-seed", args.stream_seed),
                ("--chunk-size", args.chunk_size),
                ("--queue-chunks", args.queue_chunks),
                ("--snapshot-every", args.snapshot_every),
                ("--max-edges", args.max_edges),
                ("--nodes", args.nodes),
                ("--follow", args.follow or None),
            )
            if value is not None
        ]
        if overridden:
            print(f"serve: --spec and {', '.join(overridden)} are "
                  f"mutually exclusive — edit the spec file instead",
                  file=sys.stderr)
            return 2
        spec = ServeSpec.from_json(Path(args.spec).read_text())
    else:
        if not args.source:
            print("serve: a source is required (or load one with "
                  "--spec FILE)", file=sys.stderr)
            return 2
        overrides = {
            "method": args.method,
            "budget": args.capacity,
            "weight": args.weight,
            "sampler_seed": args.seed,
            "chunk_size": args.chunk_size,
            "queue_chunks": args.queue_chunks,
            "snapshot_every": args.snapshot_every,
            "max_edges": args.max_edges,
            "nodes": args.nodes,
        }
        overrides = {k: v for k, v in overrides.items() if v is not None}
        if args.stream_seed is not None:
            # Negative = "keep source order" (None is unspellable on a CLI),
            # so this must land after the unset-flag filter above.
            overrides["stream_seed"] = (
                None if args.stream_seed < 0 else args.stream_seed
            )
        if args.follow:
            overrides["follow"] = True
        spec = ServeSpec(source=args.source, **overrides)
    try:
        service = SamplingService(spec)
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    import json

    service.start()
    try:
        if args.port is not None:
            serve_tcp(
                service,
                port=args.port,
                ready=lambda host, port: print(
                    f"serving on tcp://{host}:{port}", file=sys.stderr
                ),
            )
        else:
            serve_stdio(service)
    except BaseException:
        try:
            service.stop(drain=False)
        except RuntimeError:
            pass  # the interrupting exception is the story
        raise
    try:
        service.stop(drain=True)
    except RuntimeError as exc:
        # A worker (pump/drive) failed: clients deserve a final,
        # machine-readable verdict and the shell a non-zero exit.
        print(json.dumps({"ok": False, "fatal": True, "error": str(exc)}))
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args) -> int:
    # Imported lazily: the analyzer (and its rule registrations) are
    # only needed by this command.
    from repro.analysis import (
        format_json,
        format_text,
        lint_paths,
        rules_markdown,
    )

    if args.markdown:
        sys.stdout.write(rules_markdown())
        return 0
    flatten = lambda values: [  # noqa: E731 - tiny comma-list splitter
        name
        for value in (values or [])
        for name in value.split(",")
        if name
    ]
    select = flatten(args.select)
    ignore = flatten(args.ignore)
    try:
        result = lint_paths(
            args.paths,
            select=select or None,
            ignore=ignore or None,
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(result))
    else:
        sys.stdout.write(format_text(result))
    return 1 if result.findings else 0


def _cmd_methods(args) -> int:
    if args.markdown:
        sys.stdout.write(registry_markdown())
        return 0
    width = max(len(name) for name in method_names())
    for spec in method_specs():
        weight_tag = "  [weighted]" if spec.uses_weight else ""
        print(f"{spec.name:<{width}}  {spec.description}{weight_tag}")
    return 0


def _cmd_weights(args) -> int:
    width = max(len(name) for name in weight_names())
    for spec in weight_specs():
        print(f"{spec.name:<{width}}  {spec.description}")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.bench import run_target

    if args.repeats is not None and args.repeats < 1:
        print("bench: --repeats must be at least 1", file=sys.stderr)
        return 2
    run_target(
        args.target,
        quick=args.quick,
        repeats=args.repeats,
        output=Path(args.output) if args.output else None,
    )
    return 0


def _cmd_reproduce(args) -> int:
    names = args.artefacts or sorted(ARTEFACTS)
    for name in names:
        print(f"\n=== {name} {'=' * (60 - len(name))}")
        ARTEFACTS[name].main([])
    return 0


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _print_estimates(title: str, estimates: GraphEstimates) -> None:
    print(title)
    print(
        f"  processed {estimates.stream_position} edges, sampled "
        f"{estimates.sample_size}, threshold z*={estimates.threshold:.4g}"
    )
    for label, estimate in (
        ("triangles", estimates.triangles),
        ("wedges", estimates.wedges),
        ("clustering", estimates.clustering),
    ):
        lb, ub = estimate.confidence_bounds()
        print(f"  {label:<11}{estimate.value:14.2f}   95% CI [{lb:.2f}, {ub:.2f}]")
