"""Command-line interface: ``python -m repro <command>``.

Production entry points for the common workflows:

* ``stats``      exact triangle/wedge/clustering (and optional 4-node
                 motif census) of an edge-list file — the ground-truth
                 side;
* ``sample``     one-pass GPS sampling of an edge-list stream with
                 in-stream estimates, optionally checkpointing the full
                 sampler state to JSON;
* ``estimate``   retrospective (post-stream) estimation from a saved
                 checkpoint: triangles/wedges/clustering and, on request,
                 k-cliques, k-stars and the motif census;
* ``track``      checkpointed real-time tracking of a stream (estimate vs
                 exact at evenly spaced points);
* ``replicate``  R independent (stream, sampler) seeded replications fanned
                 across worker processes; reports mean / variance / 95% CI
                 of the estimates — the paper's error-bar protocol;
* ``reproduce``  regenerate the paper's tables and figures.

Edge-list format: two whitespace-separated node ids per line, ``#``/``%``
comments, optional ``.gz``; extra columns ignored.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.estimates import GraphEstimates
from repro.core.in_stream import InStreamEstimator
from repro.core.local import LocalTriangleEstimator
from repro.core.motifs import MotifCensusEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.subgraphs import CliqueEstimator, StarEstimator
from repro.core.weights import TriangleWeight, UniformWeight, WedgeWeight
from repro.engine.replication import ReplicatedRunner
from repro.experiments import figure1, figure2, figure3, table1, table2, table3
from repro.graph.exact import ExactStreamCounter, compute_statistics
from repro.graph.io import iter_edge_list, read_edge_list
from repro.graph.motifs import count_motifs
from repro.streams.stream import EdgeStream
from repro.streams.transforms import simplify_edges

WEIGHTS = {
    "triangle": TriangleWeight,
    "uniform": UniformWeight,
    "wedge": WedgeWeight,
}

ARTEFACTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph Priority Sampling for massive graph streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="exact statistics of an edge list")
    stats.add_argument("path")
    stats.add_argument("--motifs", action="store_true",
                       help="also count the six connected 4-node motifs")

    sample = commands.add_parser("sample", help="GPS-sample an edge-list stream")
    sample.add_argument("path")
    sample.add_argument("-m", "--capacity", type=int, required=True)
    sample.add_argument("--weight", choices=sorted(WEIGHTS), default="triangle")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("-o", "--output", help="write a resumable checkpoint here")

    estimate = commands.add_parser(
        "estimate", help="post-stream estimation from a checkpoint"
    )
    estimate.add_argument("checkpoint")
    estimate.add_argument("--weight", choices=sorted(WEIGHTS), default="triangle")
    estimate.add_argument("--motifs", action="store_true")
    estimate.add_argument("--cliques", type=int, metavar="K",
                          help="also estimate K-clique counts")
    estimate.add_argument("--stars", type=int, metavar="K",
                          help="also estimate K-star counts")
    estimate.add_argument("--top-nodes", type=int, metavar="N",
                          help="show the N nodes with largest local "
                               "triangle estimates")

    track = commands.add_parser("track", help="track estimates over a stream")
    track.add_argument("path")
    track.add_argument("-m", "--capacity", type=int, required=True)
    track.add_argument("--checkpoints", type=int, default=10)
    track.add_argument("--weight", choices=sorted(WEIGHTS), default="triangle")
    track.add_argument("--seed", type=int, default=0)

    replicate = commands.add_parser(
        "replicate", help="parallel multi-seed replications with error bars"
    )
    replicate.add_argument("path")
    replicate.add_argument("-m", "--capacity", type=int, required=True)
    replicate.add_argument("-R", "--replications", type=int, default=8)
    replicate.add_argument("--workers", type=int, default=None,
                           help="process-pool size (0 runs inline)")
    replicate.add_argument("--weight", choices=sorted(WEIGHTS), default="triangle")
    replicate.add_argument("--stream-seed", type=int, default=0)
    replicate.add_argument("--sampler-seed", type=int, default=10_000)

    reproduce = commands.add_parser(
        "reproduce", help="regenerate the paper's tables and figures"
    )
    reproduce.add_argument(
        "artefacts", nargs="*", default=sorted(ARTEFACTS),
        choices=sorted(ARTEFACTS) + [[]],
        help="subset of artefacts (default: all)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "stats": _cmd_stats,
        "sample": _cmd_sample,
        "estimate": _cmd_estimate,
        "track": _cmd_track,
        "replicate": _cmd_replicate,
        "reproduce": _cmd_reproduce,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------
# Command handlers
# ----------------------------------------------------------------------
def _cmd_stats(args) -> int:
    graph = read_edge_list(args.path)
    stats = compute_statistics(graph)
    print(f"nodes      {stats.num_nodes}")
    print(f"edges      {stats.num_edges}")
    print(f"triangles  {stats.triangles}")
    print(f"wedges     {stats.wedges}")
    print(f"clustering {stats.clustering:.6f}")
    if args.motifs:
        for name, count in count_motifs(graph).as_dict().items():
            print(f"{name:<16} {count}")
    return 0


def _cmd_sample(args) -> int:
    estimator = InStreamEstimator(
        args.capacity, weight_fn=WEIGHTS[args.weight](), seed=args.seed
    )
    edges = simplify_edges(iter_edge_list(args.path))
    estimator.process_stream(edges)
    _print_estimates("in-stream estimates", estimator.estimates())
    if args.output:
        path = save_checkpoint(estimator, args.output)
        print(f"checkpoint written to {path}")
    return 0


def _cmd_estimate(args) -> int:
    loaded = load_checkpoint(args.checkpoint, weight_fn=WEIGHTS[args.weight]())
    sampler = loaded.sampler if isinstance(loaded, InStreamEstimator) else loaded
    estimates = PostStreamEstimator(sampler).estimate()
    _print_estimates("post-stream estimates", estimates)
    if args.cliques:
        clique = CliqueEstimator(sampler, size=args.cliques).estimate()
        lb, ub = clique.confidence_bounds()
        print(f"{args.cliques}-cliques  {clique.value:.1f}  95% CI [{lb:.1f}, {ub:.1f}]")
    if args.stars:
        star = StarEstimator(sampler, leaves=args.stars).estimate()
        print(f"{args.stars}-stars    {star.value:.1f}")
    if args.motifs:
        for name, estimate in MotifCensusEstimator(sampler).estimate().items():
            print(f"{name:<16} {estimate.value:.1f}")
    if args.top_nodes:
        print(f"top {args.top_nodes} nodes by local triangle estimate:")
        for node, count in LocalTriangleEstimator(sampler).top_nodes(args.top_nodes):
            print(f"  {node!r}: {count:.1f}")
    return 0


def _cmd_track(args) -> int:
    edges = list(simplify_edges(iter_edge_list(args.path)))
    estimator = InStreamEstimator(
        args.capacity, weight_fn=WEIGHTS[args.weight](), seed=args.seed
    )
    exact = ExactStreamCounter()
    marks = set(EdgeStream.from_edges(edges).checkpoints(args.checkpoints))
    print(f"{'t':>10}  {'triangles':>12}  {'estimate':>12}  {'ARE':>8}")
    t = 0
    for u, v in edges:
        estimator.process(u, v)
        exact.process(u, v)
        t += 1
        if t in marks:
            estimate = estimator.triangle_estimate
            actual = exact.triangles
            err = abs(estimate - actual) / actual if actual else 0.0
            print(f"{t:>10}  {actual:>12}  {estimate:>12.0f}  {err:>8.2%}")
    return 0


def _cmd_replicate(args) -> int:
    edges = list(simplify_edges(iter_edge_list(args.path)))
    runner = ReplicatedRunner(
        edges,
        capacity=args.capacity,
        weight_fn=WEIGHTS[args.weight](),
        replications=args.replications,
        max_workers=args.workers,
        base_stream_seed=args.stream_seed,
        base_sampler_seed=args.sampler_seed,
    )
    summary = runner.run()
    print(
        f"{summary.num_replications} replications over {len(edges)} edges "
        f"(m={args.capacity}, weight={args.weight}, workers={summary.workers})"
    )
    print(f"{'metric':<22} {'mean':>14} {'std':>12}  95% CI")
    for label, stats in (
        ("triangles in-stream", summary.in_stream_triangles),
        ("triangles post-stream", summary.post_stream_triangles),
        ("wedges in-stream", summary.in_stream_wedges),
        ("clustering in-stream", summary.in_stream_clustering),
    ):
        std = stats.variance ** 0.5
        print(
            f"{label:<22} {stats.mean:>14.2f} {std:>12.2f}  "
            f"[{stats.ci_low:.2f}, {stats.ci_high:.2f}]"
        )
    return 0


def _cmd_reproduce(args) -> int:
    names = args.artefacts or sorted(ARTEFACTS)
    for name in names:
        print(f"\n=== {name} {'=' * (60 - len(name))}")
        ARTEFACTS[name].main([])
    return 0


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _print_estimates(title: str, estimates: GraphEstimates) -> None:
    print(title)
    print(
        f"  processed {estimates.stream_position} edges, sampled "
        f"{estimates.sample_size}, threshold z*={estimates.threshold:.4g}"
    )
    for label, estimate in (
        ("triangles", estimates.triangles),
        ("wedges", estimates.wedges),
        ("clustering", estimates.clustering),
    ):
        lb, ub = estimate.confidence_bounds()
        print(f"  {label:<11}{estimate.value:14.2f}   95% CI [{lb:.2f}, {ub:.2f}]")
