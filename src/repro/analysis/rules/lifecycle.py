"""Rule ``shm-lifecycle``: every created shared-memory segment is owned.

``SharedMemory(create=True)`` allocates a kernel object that outlives
the process unless someone calls ``unlink()``.  A creation site outside
a lifecycle-bearing class (one that also defines ``close`` and
``unlink``) or a ``try/finally`` that unlinks leaks segments on every
exception path — exactly the failure mode the replication fan-out's
context manager exists to prevent.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.astutil import (
    collect_imports,
    parent_map,
    resolve_call_target,
)
from repro.analysis.findings import FileContext, RawFinding
from repro.analysis.registry import register_rule


def _is_create_true(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _finally_unlinks(try_node: ast.Try) -> bool:
    for stmt in try_node.finalbody:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "unlink"
            ):
                return True
    return False


@register_rule(
    "shm-lifecycle",
    severity="error",
    scope=(),
    summary="SharedMemory(create=True) must live in a close+unlink class "
    "or a try/finally that unlinks",
    rationale=(
        "A created segment is a named kernel object; nothing reclaims "
        "it when the creating process dies mid-run. The repo's "
        "publishing side therefore pairs every creation with an owner "
        "exposing `close` and `unlink` (driven by a context manager "
        "that unlinks on success, failure and KeyboardInterrupt alike "
        "— see `repro.engine.shared_edges`). A bare creation, or one "
        "whose cleanup lives on the happy path only, leaks segments "
        "under every exception — invisible in tests, fatal on a "
        "long-lived host."
    ),
    example=(
        "from multiprocessing import shared_memory\n"
        "\n"
        "\n"
        "def publish(payload):\n"
        "    shm = shared_memory.SharedMemory(create=True, size=len(payload))\n"
        "    shm.buf[: len(payload)] = payload\n"
        "    return shm.name\n"
    ),
    example_path="engine/example.py",
    fix=(
        "Create the segment inside a class that also defines `close` "
        "and `unlink` (and drive it through a context manager), or "
        "wrap the creation in `try/finally` whose `finally` calls "
        "`.unlink()`."
    ),
)
def check_shm_lifecycle(ctx: FileContext) -> List[RawFinding]:
    imports = collect_imports(ctx.tree)
    parents = parent_map(ctx.tree)
    out: List[RawFinding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(node.func, imports)
        named_shared_memory = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "SharedMemory"
        ) or (
            target is not None and target.endswith(".SharedMemory")
        )
        if not named_shared_memory or not _is_create_true(node):
            continue
        owned = False
        ancestor = parents.get(node)
        while ancestor is not None:
            if isinstance(ancestor, ast.Try) and _finally_unlinks(ancestor):
                owned = True
                break
            if isinstance(ancestor, ast.ClassDef):
                methods = {
                    stmt.name
                    for stmt in ancestor.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if {"close", "unlink"} <= methods:
                    owned = True
                break
            ancestor = parents.get(ancestor)
        if not owned:
            out.append(
                (
                    node.lineno,
                    node.col_offset,
                    "SharedMemory(create=True) outside a close+unlink "
                    "owner class or an unlinking try/finally leaks the "
                    "segment on exception paths",
                )
            )
    return out
