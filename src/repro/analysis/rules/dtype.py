"""Rule ``dtype-explicit``: the columnar pipeline stays int32 end to end.

The chunked admission gate, the shared-memory fan-out and the interner
all traffic in dense ``int32`` columns; numpy's *default* dtypes are
platform- and input-dependent (``int64``/``float64`` on Linux,
``int32`` on Windows for some creators), so a dtype-less array creation
in that path is a latent cross-platform bit-drift — and a silent 2×
memory regression when an int64 sneaks into a column.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.astutil import collect_imports, keyword_names
from repro.analysis.findings import FileContext, RawFinding
from repro.analysis.registry import register_rule

#: numpy creators whose result dtype is an implicit default unless
#: pinned.  Conversions that *preserve* their input's dtype by design
#: (``asarray``, ``ascontiguousarray``, ``*_like``) are exempt.
_CREATORS = frozenset(
    {
        "array",
        "empty",
        "zeros",
        "ones",
        "full",
        "arange",
        "fromiter",
        "frombuffer",
    }
)


@register_rule(
    "dtype-explicit",
    severity="error",
    scope=("core", "baselines", "streams", "engine", "shard"),
    summary="numpy array creation in the chunk path must pin dtype= "
    "explicitly",
    rationale=(
        "The chunked pipeline's contract is int32 columns end to end "
        "(`repro.streams.chunks`, `process_chunk`, the shared-memory "
        "fan-out); its float side is explicit float64 so chunked and "
        "scalar passes share every bit. numpy creators without `dtype=` "
        "fall back to defaults that vary by platform and input "
        "(`np.array([1, 2])` is int64 on Linux, int32 on Windows), so "
        "one dtype-less `np.zeros`/`np.array` can flip the whole "
        "equivalence matrix on another machine, or double a column's "
        "memory without any test failing here."
    ),
    example=(
        "import numpy as np\n"
        "\n"
        "\n"
        "def make_columns(n):\n"
        "    return np.zeros(n), np.array([1, 2, 3])\n"
    ),
    example_path="streams/example.py",
    fix=(
        "Pass the intended dtype as a keyword: `np.zeros(n, "
        "dtype=np.int32)`, `np.array(values, dtype=np.float64)`. If "
        "the input's dtype should be preserved, use `np.asarray`/"
        "`np.ascontiguousarray`, which the rule exempts."
    ),
)
def check_dtype_explicit(ctx: FileContext) -> List[RawFinding]:
    imports = collect_imports(ctx.tree)
    out: List[RawFinding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name: str = ""
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and imports.get(base.id) == "numpy"
                and func.attr in _CREATORS
            ):
                name = func.attr
        elif isinstance(func, ast.Name):
            origin = imports.get(func.id, "")
            if origin.startswith("numpy.") and origin.rsplit(".", 1)[1] in _CREATORS:
                name = origin.rsplit(".", 1)[1]
        if not name:
            continue
        keywords = keyword_names(node)
        if "dtype" in keywords or "**" in keywords:
            continue
        out.append(
            (
                node.lineno,
                node.col_offset,
                f"numpy.{name}(...) without an explicit dtype= keyword "
                "inherits a platform-dependent default; pin the dtype",
            )
        )
    return out
