"""Rule ``exception-discipline``: broad handlers must surface or re-raise.

The concurrent subsystems (the engine's pool fan-out, the shard runner,
the serving threads) run user-relevant work on paths where a swallowed
exception does not crash anything — it silently corrupts results: a
pump thread that eats an error ends the stream early and the service
reports a truncated sample as if it were the answer.  The repo's
convention is that a broad ``except`` in those subsystems either
re-raises (possibly after bounded retry bookkeeping) or records the
failure on a *surfaced* error channel (``self._errors``, an ``"error"``
response field) that a caller provably reads.  Anything else is a
black hole, and the one legitimate probe fallback carries an inline
justification.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import FileContext, RawFinding
from repro.analysis.registry import register_rule

#: Exception names considered "broad": catching these (or a tuple
#: containing them) captures every programming error too.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _names_broad(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD_NAMES
    return False


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(_names_broad(elt) for elt in handler.type.elts)
    return _names_broad(handler.type)


def _mentions_error_channel(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "error" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "error" in node.attr.lower()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "error" in node.value.lower()
    return False


def _handler_disciplined(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Raise):
                return True
            if _mentions_error_channel(sub):
                return True
    return False


@register_rule(
    "exception-discipline",
    severity="error",
    scope=("engine", "shard", "serve", "distrib"),
    summary="Broad except in concurrent subsystems must re-raise or "
    "record on a surfaced error channel",
    rationale=(
        "The engine/shard/serve layers run on worker threads and pool "
        "processes where nothing observes an exception unless the "
        "handler makes it observable. A broad `except Exception` that "
        "neither re-raises nor records the failure on a channel a "
        "caller reads (`self._errors` surfaced by `join()`, an "
        "`\"error\"` field in a protocol response) converts crashes "
        "into silently truncated streams and half-complete results — "
        "the worst failure mode a determinism-first harness can have. "
        "Narrow handlers (`except OSError`) are exempt: catching a "
        "named failure you expect is policy, catching everything is "
        "amnesia."
    ),
    example=(
        "def pump(source, queue):\n"
        "    try:\n"
        "        for block in source:\n"
        "            queue.put(block)\n"
        "    except Exception:\n"
        "        pass  # worker dies silently; stream looks complete\n"
    ),
    example_path="serve/example.py",
    fix=(
        "Re-raise after bookkeeping, append the failure to a surfaced "
        "error channel (e.g. `self._errors`, re-raised by `join()`), "
        "or — for a genuinely safe probe fallback — suppress with "
        "`# repro-lint: disable=exception-discipline` and a "
        "justification on the handler line."
    ),
)
def check_exception_discipline(ctx: FileContext) -> List[RawFinding]:
    out: List[RawFinding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node):
            continue
        if _handler_disciplined(node):
            continue
        out.append(
            (
                node.lineno,
                node.col_offset,
                "broad except swallows the failure: re-raise, record it "
                "on a surfaced error channel, or justify an inline "
                "disable",
            )
        )
    return out
