"""Rule ``registry-flags``: method registrations declare label safety.

The shared-memory fan-out and the chunked pipeline both dispatch on
:attr:`MethodSpec.reads_labels` — a method that observes node labels
must keep original labels (pickled dispatch, scalar pipeline); one that
is label-free licenses the interned ``int32`` fast paths.  The default
(``False``) opts registrations into the fast paths silently, so a
label-reading method registered without the flag returns *wrong
per-label results* in pools with no error anywhere.  Requiring the
keyword makes every registration an explicit, reviewable claim.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.astutil import keyword_names
from repro.analysis.findings import FileContext, RawFinding
from repro.analysis.registry import register_rule


@register_rule(
    "registry-flags",
    severity="error",
    scope=(),
    summary="register_method(...) must pass reads_labels= explicitly",
    rationale=(
        "`reads_labels` is the label-safety flag the replication/sweep "
        "pools and the chunked gate read: `False` licenses interned "
        "int32 dispatch and columnar blocks, `True` forces pickled "
        "original-label dispatch. Defaulting it means a label-reading "
        "method silently rides the interned fast path and reports "
        "statistics about the *wrong labels* — no exception, no failing "
        "assertion, just wrong numbers in pooled runs. (Weight "
        "functions carry the equivalent claim as `is_label_free`, "
        "probed at dispatch time, so `register_weight` needs no flag.)"
    ),
    example=(
        "from repro.api.registry import register_method\n"
        "\n"
        "\n"
        "@register_method('my-method', description='forgot the flag')\n"
        "def _make(budget, stream_length, seed):\n"
        "    return object()\n"
    ),
    example_path="plugins/example.py",
    fix=(
        "State the claim: `@register_method(name, ..., "
        "reads_labels=False)` for label-free methods, "
        "`reads_labels=True` for methods whose counters or extractors "
        "observe node labels."
    ),
)
def check_registry_flags(ctx: FileContext) -> List[RawFinding]:
    out: List[RawFinding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name != "register_method":
            continue
        keywords = keyword_names(node)
        if "reads_labels" in keywords or "**" in keywords:
            continue
        out.append(
            (
                node.lineno,
                node.col_offset,
                "register_method(...) without an explicit reads_labels= "
                "silently opts the method into interned-label fast "
                "paths; declare the label-safety claim",
            )
        )
    return out
