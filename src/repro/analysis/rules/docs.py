"""Rule ``api-doctest``: the public facade stays example-driven.

Every public function in :mod:`repro.api` carries a doctest, and the
tier-1 suite executes them (``tests/test_api_doctests.py``) — the
examples in the docs are therefore guaranteed to run.  A new facade
function without one silently erodes that guarantee.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.findings import FileContext, RawFinding
from repro.analysis.registry import register_rule


@register_rule(
    "api-doctest",
    severity="warning",
    scope=("api",),
    summary="Public repro.api module functions carry a doctest",
    rationale=(
        "The facade's documentation *is* its doctest suite: "
        "`tests/test_api_doctests.py` executes every example, so what "
        "the docstrings show is what the code does. A public api "
        "function without a `>>>` example is the one entry point whose "
        "documented behaviour nothing checks — exactly where drift "
        "starts. (Severity `warning`: a missing example is a "
        "discipline gap, not an invariant break, but it still fails "
        "the lint gate.)"
    ),
    example=(
        "def run_everything(spec):\n"
        "    \"\"\"Run the spec (no example, nothing executes this doc).\"\"\"\n"
        "    return spec\n"
    ),
    example_path="api/example.py",
    fix=(
        "Add a runnable `Example` section with `>>>` lines to the "
        "docstring (see any function in `repro.api.registry`); it is "
        "picked up by the doctest suite automatically."
    ),
)
def check_api_doctest(ctx: FileContext) -> List[RawFinding]:
    out: List[RawFinding] = []
    for node in ctx.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_"):
            continue
        docstring = ast.get_docstring(node) or ""
        if ">>>" not in docstring:
            out.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"public api function {node.name}() has no doctest; "
                    "the facade's documented behaviour must execute in "
                    "the doctest suite",
                )
            )
    return out
