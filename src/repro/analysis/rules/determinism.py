"""Rule ``nondet-ban``: estimator layers must be pure functions of input.

Wall clocks, OS entropy and hash-order set iteration are the three ways
nondeterminism has historically leaked into "deterministic" pipelines.
The first two are obvious; the third is the subtle one: iterating a
``set`` feeds Python's hash order into whatever is accumulated — and
float accumulation is order-sensitive, so two runs with string node
labels (``PYTHONHASHSEED``) can disagree in the last ulp while every
test with int labels stays green.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.astutil import collect_imports, resolve_call_target
from repro.analysis.findings import FileContext, RawFinding
from repro.analysis.registry import register_rule

#: Wall-clock / entropy calls that have no place in an estimator.
_BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Set methods whose result is again a set.
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)


def _is_keys_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
    )


def _is_setlike(node: ast.expr, env: Dict[str, bool]) -> bool:
    """Conservative 'this expression evaluates to a set' inference."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return env.get(node.id, False)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and (
                _is_setlike(func.value, env) or _is_keys_call(func.value)
            )
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        for side in (node.left, node.right):
            if _is_setlike(side, env) or _is_keys_call(side):
                return True
    return False


class _SetIterVisitor(ast.NodeVisitor):
    """Per-scope visitor flagging iteration over set-typed expressions.

    Tracks simple ``name = <set-producing expr>`` assignments in source
    order within each function scope (nested functions get a fresh
    environment), then flags ``for``-loop and comprehension iterables
    that are set-typed — membership tests and ``sorted(...)`` wrappers
    are fine.
    """

    def __init__(self, out: List[RawFinding]) -> None:
        self.out = out
        self.env: Dict[str, bool] = {}

    def _enter_scope(self, node: ast.AST) -> None:
        sub = _SetIterVisitor(self.out)
        for child in ast.iter_child_nodes(node):
            sub.visit(child)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        setlike = _is_setlike(node.value, self.env)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = setlike

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) and node.value is not None:
            self.env[node.target.id] = _is_setlike(node.value, self.env)

    def _flag(self, iterable: ast.expr) -> None:
        if _is_setlike(iterable, self.env):
            self.out.append(
                (
                    iterable.lineno,
                    iterable.col_offset,
                    "iterating a set feeds hash order into the result; "
                    "iterate an insertion-ordered dict/list (or sorted(...)) "
                    "instead",
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._flag(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


@register_rule(
    "nondet-ban",
    severity="error",
    scope=("core", "stats", "serve", "shard", "distrib"),
    summary="No wall clocks, OS entropy, or hash-ordered set iteration "
    "in estimator layers",
    rationale=(
        "`core/` and `stats/` compute the numbers the paper's tables "
        "assert on, and `serve/` replays them live; they must be pure "
        "functions of (stream, seed). "
        "`time.time`/`datetime.now`/`os.urandom` are obviously impure. "
        "Set iteration is the stealth variant: float accumulation is "
        "order-sensitive and a set's order is hash order, so a product "
        "over `dict_a.keys() & dict_b.keys()` differs between runs the "
        "moment node labels are strings (hash randomization) — while "
        "every int-labelled test stays green. Timing belongs in the "
        "engine/bench layers, which this rule deliberately leaves out "
        "of scope."
    ),
    example=(
        "import time\n"
        "\n"
        "\n"
        "def covariance(first, second):\n"
        "    shared = first.keys() & second.keys()\n"
        "    value = time.time() * 0.0 + 1.0\n"
        "    for key in shared:\n"
        "        value *= 1.0 / first[key]\n"
        "    return value\n"
    ),
    example_path="core/example.py",
    fix=(
        "Drop the clock/entropy call (or move it to the engine/bench "
        "layer); replace set iteration with iteration over an "
        "insertion-ordered dict filtered by membership, e.g. "
        "`for key, p in first.items(): if key in second: ...`."
    ),
)
def check_nondet_ban(ctx: FileContext) -> List[RawFinding]:
    imports = collect_imports(ctx.tree)
    out: List[RawFinding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            target: Optional[str] = resolve_call_target(node.func, imports)
            if target in _BANNED_CALLS:
                out.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"`{target}` injects wall-clock/OS state into an "
                        "estimator layer; results must be pure functions "
                        "of (stream, seed)",
                    )
                )
    _SetIterVisitor(out).visit(ctx.tree)
    out.sort()
    return out
