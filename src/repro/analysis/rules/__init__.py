"""Built-in invariant rules; importing this package registers them all.

Each module encodes one real repo invariant (see the module docstrings
and ``docs/invariants.md``, which is generated from the registrations):

* :mod:`~repro.analysis.rules.rng` — rng-discipline
* :mod:`~repro.analysis.rules.dtype` — dtype-explicit
* :mod:`~repro.analysis.rules.lifecycle` — shm-lifecycle
* :mod:`~repro.analysis.rules.determinism` — nondet-ban
* :mod:`~repro.analysis.rules.spec` — frozen-spec
* :mod:`~repro.analysis.rules.registration` — registry-flags
* :mod:`~repro.analysis.rules.docs` — api-doctest
* :mod:`~repro.analysis.rules.exceptions` — exception-discipline
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    determinism,
    docs,
    dtype,
    exceptions,
    lifecycle,
    registration,
    rng,
    spec,
)

__all__ = [
    "determinism",
    "docs",
    "dtype",
    "exceptions",
    "lifecycle",
    "registration",
    "rng",
    "spec",
]
