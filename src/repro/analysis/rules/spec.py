"""Rule ``frozen-spec``: experiment specs stay frozen value objects.

``RunSpec`` is hashable, diffable and shippable to workers precisely
because it is a frozen dataclass with a lossless ``to_dict``/
``from_dict`` round trip.  A mutable spec (or one without the paired
serializers) breaks spec files, the sweep cache's content addressing,
and the "experiments are data" contract all at once.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.findings import FileContext, RawFinding
from repro.analysis.registry import register_rule


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in node.decorator_list:
        probe = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(probe, ast.Name) and probe.id == "dataclass":
            return decorator
        if isinstance(probe, ast.Attribute) and probe.attr == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass defaults to frozen=False
    for kw in decorator.keywords:
        if kw.arg == "frozen":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


@register_rule(
    "frozen-spec",
    severity="error",
    scope=("api/spec.py", "serve/spec.py", "shard/spec.py", "faults/spec.py",
           "distrib/spec.py"),
    summary="Spec dataclasses must be frozen=True with paired "
    "to_dict/from_dict",
    rationale=(
        "Specs are the repo's unit of provenance: stored in files, "
        "hashed into the sweep cache's content addressing, shipped to "
        "pool workers, and replayed bit-identically. That only holds "
        "if the dataclass is immutable (`frozen=True` — mutation after "
        "hashing silently corrupts cache keys) and JSON-round-trippable "
        "(`to_dict` paired with `from_dict`; one without the other "
        "strands saved spec files at the next schema change)."
    ),
    example=(
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass\n"
        "class RunSpec:\n"
        "    source: str\n"
        "    budget: int = 1000\n"
        "\n"
        "    def to_dict(self):\n"
        "        return {'source': self.source, 'budget': self.budget}\n"
    ),
    example_path="api/spec.py",
    fix=(
        "Declare the dataclass `@dataclass(frozen=True)` and give it "
        "both `to_dict` and a `from_dict` classmethod that inverts it "
        "(rejecting unknown keys, like `RunSpec.from_dict`)."
    ),
)
def check_frozen_spec(ctx: FileContext) -> List[RawFinding]:
    out: List[RawFinding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        decorator = _dataclass_decorator(node)
        if decorator is None:
            continue
        if not _is_frozen(decorator):
            out.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"spec dataclass {node.name} must be declared "
                    "@dataclass(frozen=True): specs are hashed into "
                    "cache keys and shipped to workers",
                )
            )
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        missing: Tuple[str, ...] = tuple(
            name for name in ("to_dict", "from_dict") if name not in methods
        )
        if missing:
            out.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"spec dataclass {node.name} lacks "
                    f"{' and '.join(missing)}: specs need a lossless "
                    "JSON round trip",
                )
            )
    return out
