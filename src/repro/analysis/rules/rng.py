"""Rule ``rng-discipline``: all randomness flows through injected RNGs.

The bit-exactness matrix (object vs compact vs chunked cores, inline vs
pooled replication) holds because every random draw comes from a
per-sampler ``random.Random(seed)`` in a fixed draw order.  A single
call into the module-level ``random``/``numpy.random`` singletons — or
an unseeded generator construction — injects process-global state into
a result and silently breaks replay.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.astutil import (
    collect_imports,
    resolve_call_target,
    walk_scoped,
)
from repro.analysis.findings import FileContext, RawFinding
from repro.analysis.registry import register_rule

#: numpy.random names that *construct* generators (fine when seeded)
#: rather than drawing from the module-level singleton.
_NUMPY_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "SeedSequence",
        "BitGenerator",
    }
)

#: Functions allowed to (re)seed an injected RNG: construction and the
#: explicit arena-reuse hook.
_SEED_SITES = frozenset({"__init__", "reset"})


@register_rule(
    "rng-discipline",
    severity="error",
    scope=("core", "baselines", "streams", "engine", "serve", "shard",
           "distrib"),
    summary="Draws come from an injected seeded RNG, never the module "
    "singletons; reseeding only in __init__/reset",
    rationale=(
        "Every replayed pass (checkpoint restore, pooled replication, "
        "chunked-vs-scalar equivalence) assumes one per-sampler MT19937 "
        "in a fixed draw order. `random.random()` / `np.random.rand()` "
        "read process-global state shared across samplers and test "
        "orderings; an unseeded `random.Random()` / "
        "`np.random.default_rng()` pulls OS entropy; reseeding outside "
        "`__init__`/`reset` shifts the draw order mid-stream. Any of "
        "the three makes results irreproducible without failing a "
        "single functional test."
    ),
    example=(
        "import random\n"
        "import numpy as np\n"
        "\n"
        "\n"
        "class Sampler:\n"
        "    def __init__(self, seed):\n"
        "        self._rng = random.Random(seed)\n"
        "\n"
        "    def process(self, u, v):\n"
        "        if random.random() < 0.5:      # module-level draw\n"
        "            return np.random.rand()    # numpy singleton draw\n"
        "        rng = random.Random()          # unseeded generator\n"
        "        self._rng.seed(0)              # reseed mid-stream\n"
        "        return rng.random()\n"
    ),
    example_path="core/example.py",
    fix=(
        "Draw from the sampler's injected `self._rng` (seeded in the "
        "constructor); construct throwaway generators as "
        "`random.Random(seed)` with an explicit seed; move reseeding "
        "into `__init__`/`reset`."
    ),
)
def check_rng_discipline(ctx: FileContext) -> List[RawFinding]:
    imports = collect_imports(ctx.tree)
    out: List[RawFinding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            drawn = sorted(
                alias.name for alias in node.names if alias.name != "Random"
            )
            if drawn:
                out.append(
                    (
                        node.lineno,
                        node.col_offset,
                        "importing free draw functions from `random` "
                        f"({', '.join(drawn)}) binds the module-level "
                        "singleton; inject a seeded random.Random instead",
                    )
                )
    for node, stack in walk_scoped(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(node.func, imports)
        if target is None:
            # Object-attribute chains: police mid-stream reseeding only.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "seed"
                and (not stack or stack[-1] not in _SEED_SITES)
            ):
                out.append(
                    (
                        node.lineno,
                        node.col_offset,
                        "reseeding an RNG outside __init__/reset shifts "
                        "the draw order mid-stream",
                    )
                )
            continue
        unseeded = not node.args and not node.keywords
        if target == "random.Random":
            if unseeded:
                out.append(
                    (
                        node.lineno,
                        node.col_offset,
                        "unseeded random.Random() draws OS entropy; pass "
                        "an explicit seed",
                    )
                )
        elif target.startswith("random."):
            out.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"module-level draw `{target}` uses process-global "
                    "RNG state; draw from the injected self._rng",
                )
            )
        elif target.startswith("numpy.random."):
            tail = target.rsplit(".", 1)[1]
            if tail in _NUMPY_CONSTRUCTORS:
                if unseeded:
                    out.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"unseeded numpy.random.{tail}() draws OS "
                            "entropy; pass an explicit seed",
                        )
                    )
            else:
                out.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"module-level draw `{target}` uses numpy's "
                        "global RandomState; draw from an injected "
                        "generator",
                    )
                )
    return out
