"""Static invariant analysis: ``python -m repro lint``.

The repo's headline guarantee — bit-exactness across the object,
compact and chunked cores for every weight and entry point — rests on
conventions no interpreter enforces: one seeded RNG per sampler in a
fixed draw order, an int32 columnar pipeline, owned shared-memory
segments, pure estimator layers, frozen round-trippable specs,
explicit label-safety claims on registrations, and an executable-
example facade.  This package turns each convention into an AST-checked
rule with a stable id, inline ``# repro-lint: disable=RULE``
suppressions, ``--select``/``--ignore`` filtering, and text/JSON
reporting — wired into CI ahead of the test matrix so invariant breaks
fail fast.

Architecture mirrors :mod:`repro.api`: a frozen-spec registry
(:mod:`~repro.analysis.registry`) that also generates the
``docs/invariants.md`` catalog, a small pure engine
(:mod:`~repro.analysis.engine`), and self-registering rule modules
(:mod:`~repro.analysis.rules`).

Example
-------
>>> import pathlib, tempfile
>>> with tempfile.TemporaryDirectory() as tmp:
...     bad = pathlib.Path(tmp) / "core" / "bad.py"
...     bad.parent.mkdir()
...     _ = bad.write_text("import random\\nx = random.random()\\n")
...     result = lint_paths([tmp])
>>> [(f.rule, f.line) for f in result.findings]
[('rng-discipline', 2)]
"""

from __future__ import annotations

import repro.analysis.rules  # noqa: F401  (register the built-in rules)
from repro.analysis.engine import (
    SYNTAX_ERROR_RULE,
    LintResult,
    lint_paths,
    scope_matches,
    suppressions,
)
from repro.analysis.findings import FileContext, Finding, RawFinding
from repro.analysis.registry import (
    Checker,
    LintRule,
    get_rule,
    register_rule,
    rule_names,
    rule_specs,
    rules_markdown,
)
from repro.analysis.reporter import format_json, format_text

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "LintResult",
    "LintRule",
    "RawFinding",
    "SYNTAX_ERROR_RULE",
    "format_json",
    "format_text",
    "get_rule",
    "lint_paths",
    "register_rule",
    "rule_names",
    "rule_specs",
    "rules_markdown",
    "scope_matches",
    "suppressions",
]
