"""The lint engine: collect files, run rules in scope, apply suppressions.

The pipeline for each ``.py`` file under the given paths:

1. parse it (a syntax error becomes a ``syntax-error`` finding —
   unsuppressible and immune to ``--select``/``--ignore``, because a
   file the analyzer cannot read satisfies no invariant);
2. run every selected rule whose :attr:`~repro.analysis.registry.
   LintRule.scope` matches the file's resolved path;
3. drop findings whose source line carries an inline
   ``# repro-lint: disable=RULE`` suppression (counted, so reports
   show how many deliberate violations the tree carries);
4. sort everything into a deterministic :class:`LintResult`.

Scope matching is purely lexical — a bare directory name matches a path
component, a ``/``-containing pattern matches a path suffix — so the
fixture suite can reproduce any scope under a tmp directory
(``tmp/core/bad.py`` is "in core" exactly like
``src/repro/core/compact.py`` is).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.analysis.findings import FileContext, Finding
from repro.analysis.registry import LintRule, rule_names, rule_specs

#: Inline suppression syntax: ``# repro-lint: disable=rule-a,rule-b``
#: (no spaces in the id list; trailing prose after a space is ignored,
#: so justifications ride in the same comment).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,-]+)")

#: Directory names never descended into.
_SKIP_DIRS = ("__pycache__",)

#: The pseudo-rule id attached to unparsable files.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True)
class LintResult:
    """One lint run: ordered findings plus coverage counters.

    Example
    -------
    >>> LintResult(findings=(), files_checked=3, suppressed=1).clean
    True
    """

    findings: Tuple[Finding, ...]
    files_checked: int
    suppressed: int

    @property
    def clean(self) -> bool:
        """Whether the run produced no (unsuppressed) findings."""
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (the ``--format json`` envelope)."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }


def iter_python_files(
    paths: Sequence[Union[str, Path]]
) -> List[Tuple[str, Path]]:
    """``(reported name, filesystem path)`` for every ``.py`` under ``paths``.

    Files are reported with the prefix the caller gave (so ``repro lint
    src`` prints ``src/…`` paths); directories are walked recursively,
    skipping hidden directories and ``__pycache__``.  Missing paths and
    non-Python files raise :class:`ValueError` — a typo'd path silently
    linting nothing would read as a clean tree.
    """
    out: List[Tuple[str, Path]] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix != ".py":
                raise ValueError(f"not a Python file: {raw}")
            out.append((str(raw), path))
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.relative_to(path).parts
                if any(
                    p.startswith(".") or p in _SKIP_DIRS for p in parts
                ):
                    continue
                out.append((str(sub), sub))
        else:
            raise ValueError(f"no such file or directory: {raw}")
    return out


def scope_matches(relpath: str, scope: Tuple[str, ...]) -> bool:
    """Whether a resolved POSIX path falls under a rule's scope.

    Example
    -------
    >>> scope_matches("/repo/src/repro/core/compact.py", ("core",))
    True
    >>> scope_matches("/tmp/fixtures/api/spec.py", ("api/spec.py",))
    True
    >>> scope_matches("/repo/src/repro/graph/io.py", ("core", "stats"))
    False
    """
    if not scope:
        return True
    parts = PurePosixPath(relpath).parts
    directories = parts[:-1]
    for pattern in scope:
        if "/" in pattern or pattern.endswith(".py"):
            if relpath == pattern or relpath.endswith("/" + pattern):
                return True
        elif pattern in directories:
            return True
    return False


def suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """1-based line → rule ids disabled on that line.

    Example
    -------
    >>> suppressions("x = 1  # repro-lint: disable=rng-discipline ok\\n")
    {1: frozenset({'rng-discipline'})}
    """
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is not None:
            out[lineno] = frozenset(
                name for name in match.group(1).split(",") if name
            )
    return out


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> Tuple[LintRule, ...]:
    known = set(rule_names())
    for label, requested in (("--select", select), ("--ignore", ignore)):
        unknown = sorted(set(requested or ()) - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s) for {label}: {', '.join(unknown)}; "
                f"known rules: {', '.join(sorted(known))}"
            )
    selected = rule_specs()
    if select is not None:
        wanted = set(select)
        selected = tuple(r for r in selected if r.name in wanted)
    if ignore is not None:
        dropped = set(ignore)
        selected = tuple(r for r in selected if r.name not in dropped)
    return selected


def lint_file(
    name: str, path: Path, rules: Sequence[LintRule]
) -> Tuple[List[Finding], int]:
    """Run ``rules`` over one file; returns (findings, suppressed count)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return (
            [
                Finding(
                    rule=SYNTAX_ERROR_RULE,
                    severity="error",
                    path=name,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"cannot parse file: {exc.msg}",
                )
            ],
            0,
        )
    relpath = path.resolve().as_posix()
    context = FileContext(
        path=name, relpath=relpath, source=source, tree=tree
    )
    disabled = suppressions(source)
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not scope_matches(relpath, rule.scope):
            continue
        for line, col, message in rule.checker(context):
            if rule.name in disabled.get(line, frozenset()):
                suppressed += 1
                continue
            findings.append(
                Finding(
                    rule=rule.name,
                    severity=rule.severity,
                    path=name,
                    line=line,
                    col=col,
                    message=message,
                )
            )
    return findings, suppressed


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with the registered rules.

    ``select`` restricts the run to the named rules, ``ignore`` drops
    rules from it; unknown ids raise :class:`ValueError` (a typo'd rule
    silently matching nothing would read as a clean tree).

    Example
    -------
    >>> import tempfile, pathlib
    >>> with tempfile.TemporaryDirectory() as tmp:
    ...     core = pathlib.Path(tmp) / "core"
    ...     core.mkdir()
    ...     _ = (core / "bad.py").write_text(
    ...         "import random\\nx = random.random()\\n")
    ...     result = lint_paths([tmp])
    >>> [f.rule for f in result.findings]
    ['rng-discipline']
    """
    rules = _select_rules(select, ignore)
    findings: List[Finding] = []
    suppressed = 0
    files = iter_python_files(paths)
    for name, path in files:
        file_findings, file_suppressed = lint_file(name, path, rules)
        findings.extend(file_findings)
        suppressed += file_suppressed
    findings.sort(key=Finding.sort_key)
    return LintResult(
        findings=tuple(findings),
        files_checked=len(files),
        suppressed=suppressed,
    )


__all__ = [
    "SYNTAX_ERROR_RULE",
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "scope_matches",
    "suppressions",
]
