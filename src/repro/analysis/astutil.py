"""Shared AST plumbing for the lint rules.

Three primitives cover every rule in :mod:`repro.analysis.rules`:

* :func:`collect_imports` — a map from local names to the dotted origin
  they were imported from (``np`` → ``numpy``, ``_shared_memory`` →
  ``multiprocessing.shared_memory``), so rules reason about *modules*,
  not spelling variants;
* :func:`resolve_call_target` — folds an ``a.b.c`` attribute chain whose
  base is an imported name into its dotted origin
  (``np.random.randint`` → ``numpy.random.randint``);
* :func:`walk_scoped` / :func:`parent_map` — tree walks that carry the
  enclosing-function stack (for "only in ``__init__``/``reset``" rules)
  or the child → parent edges (for "inside a class that also defines
  ``unlink``" rules).

All helpers are pure functions of the tree; rules stay stateless.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Mapping, Optional, Tuple


def collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name → dotted origin for every import binding in ``tree``.

    Handles all four spellings, wherever they appear (including inside
    ``try`` blocks guarding optional dependencies):

    >>> tree = ast.parse(
    ...     "import numpy as np\\n"
    ...     "import numpy.random\\n"
    ...     "from multiprocessing import shared_memory as shm\\n"
    ...     "from random import Random\\n")
    >>> imports = collect_imports(tree)
    >>> imports["np"], imports["numpy"], imports["shm"], imports["Random"]
    ('numpy', 'numpy', 'multiprocessing.shared_memory', 'random.Random')
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    # ``import numpy.random`` binds the root name only.
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never hit the stdlib/numpy
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def resolve_call_target(
    node: ast.expr, imports: Mapping[str, str]
) -> Optional[str]:
    """Dotted origin of an attribute chain rooted in an imported name.

    Returns ``None`` for chains rooted anywhere else (``self._rng.seed``)
    — those are object attributes, not module access.

    >>> tree = ast.parse("import numpy as np\\nnp.random.randint(3)")
    >>> call = tree.body[1].value
    >>> resolve_call_target(call.func, collect_imports(tree))
    'numpy.random.randint'
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = imports.get(node.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def walk_scoped(
    node: ast.AST, stack: Tuple[str, ...] = ()
) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Every descendant of ``node`` with its enclosing-function stack.

    The stack holds function names innermost-last; a node at class or
    module level carries an empty stack.

    >>> tree = ast.parse("def reset(self):\\n    x = 1")
    >>> [(type(n).__name__, s) for n, s in walk_scoped(tree)
    ...  if isinstance(n, ast.Assign)]
    [('Assign', ('reset',))]
    """
    for child in ast.iter_child_nodes(node):
        yield child, stack
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from walk_scoped(child, stack + (child.name,))
        else:
            yield from walk_scoped(child, stack)


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child → parent edges for ancestor climbs (lifecycle rule)."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def keyword_names(node: ast.Call) -> Tuple[str, ...]:
    """Explicit keyword names of a call; ``**splat`` contributes ``'**'``.

    >>> call = ast.parse("f(a=1, **extra)").body[0].value
    >>> keyword_names(call)
    ('a', '**')
    """
    return tuple(
        kw.arg if kw.arg is not None else "**" for kw in node.keywords
    )


__all__ = [
    "collect_imports",
    "keyword_names",
    "parent_map",
    "resolve_call_target",
    "walk_scoped",
]
