"""Rule registry: every invariant the analyzer enforces, as data.

Mirrors the :mod:`repro.api.registry` idiom: one frozen spec per rule,
registered under a stable id by a decorator, duplicate ids rejected,
and the whole catalog renderable as Markdown — ``docs/invariants.md``
is generated from here (``python -m repro lint --markdown``) with a
sync test, exactly like ``docs/methods.md`` is generated from the
method registry.  Registering a rule therefore *is* documenting it.

Each :class:`LintRule` carries, besides its checker, the material the
catalog needs: a one-line summary, the rationale (which repo invariant
it guards and why), a minimal violating example, the fixture path the
example must sit at to be in scope (the test suite lints every example
at its ``example_path`` and asserts the rule fires — catalog examples
are guaranteed real), and the fix guidance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.analysis.findings import SEVERITIES, FileContext, RawFinding

#: A rule's checker: one parsed file in, raw findings out.
Checker = Callable[[FileContext], List[RawFinding]]


@dataclass(frozen=True)
class LintRule:
    """One registered invariant check.

    Attributes
    ----------
    name:
        Stable rule id (``--select``/``--ignore`` value, suppression
        target, finding field).
    severity:
        ``"error"`` (invariant break) or ``"warning"`` (discipline gap).
        Any finding makes ``repro lint`` exit nonzero; severity is
        reporting metadata.
    scope:
        Path patterns the rule applies to.  A bare name (``"core"``)
        matches any file with that directory component; a pattern
        containing ``/`` or ending in ``.py`` (``"api/spec.py"``)
        matches as a path suffix.  Empty scope = every file.
    summary:
        One-line description for listings.
    rationale:
        Which repo invariant the rule guards and what breaks without it
        (the catalog body).
    example:
        Minimal violating snippet; linted at :attr:`example_path` by the
        test suite, so the catalog never documents a non-firing example.
    example_path:
        Relative path the example must live at to be in scope.
    fix:
        How to bring violating code into compliance.
    checker:
        The AST checker itself.
    """

    name: str
    severity: str
    scope: Tuple[str, ...]
    summary: str
    rationale: str
    example: str
    example_path: str
    fix: str
    checker: Checker = field(repr=False)


_RULES: Dict[str, LintRule] = {}


def register_rule(
    name: str,
    *,
    severity: str,
    scope: Tuple[str, ...],
    summary: str,
    rationale: str,
    example: str,
    example_path: str,
    fix: str,
) -> Callable[[Checker], Checker]:
    """Decorator registering a checker under a stable rule id.

    Registration is global and id-keyed; duplicate ids are rejected so
    two modules cannot silently shadow each other's rules — the same
    contract :func:`repro.api.registry.register_method` enforces.

    Example
    -------
    >>> @register_rule("demo-rule", severity="error", scope=("core",),
    ...                summary="s", rationale="r", example="x = 1\\n",
    ...                example_path="core/demo.py", fix="f")
    ... def _check(ctx):
    ...     return []                                  # doctest: +SKIP
    """
    if severity not in SEVERITIES:
        raise ValueError(
            f"severity must be one of {SEVERITIES}, got {severity!r}"
        )

    def decorate(checker: Checker) -> Checker:
        if name in _RULES:
            raise ValueError(f"lint rule {name!r} is already registered")
        _RULES[name] = LintRule(
            name=name,
            severity=severity,
            scope=scope,
            summary=summary,
            rationale=rationale,
            example=example,
            example_path=example_path,
            fix=fix,
            checker=checker,
        )
        return checker

    return decorate


def get_rule(name: str) -> LintRule:
    """Look a rule up by id; unknown ids raise with the known set.

    Example
    -------
    >>> get_rule("rng-discipline").severity
    'error'
    """
    try:
        return _RULES[name]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise ValueError(
            f"unknown lint rule {name!r}; known rules: {known}"
        ) from None


def rule_names() -> Tuple[str, ...]:
    """Registered rule ids in registration order.

    Example
    -------
    >>> "rng-discipline" in rule_names()
    True
    """
    return tuple(_RULES)


def rule_specs() -> Tuple[LintRule, ...]:
    """Registered :class:`LintRule` values in registration order.

    Example
    -------
    >>> all(spec.example_path for spec in rule_specs())
    True
    """
    return tuple(_RULES.values())


def _scope_markdown(scope: Tuple[str, ...]) -> str:
    if not scope:
        return "every linted file"
    return ", ".join(
        f"`{pattern}`" if "/" in pattern or pattern.endswith(".py")
        else f"`{pattern}/`"
        for pattern in scope
    )


def rules_markdown() -> str:
    """The invariant catalog as Markdown, generated from the registry.

    This is the single source of ``docs/invariants.md``:
    ``python -m repro lint --markdown`` emits it, and a sync test (plus
    a CI step) fails when the checked-in file drifts from the registry
    — the ``docs/methods.md`` mechanism applied to lint rules.

    Example
    -------
    >>> "## rng-discipline" in rules_markdown()
    True
    """
    lines = [
        "# Invariant catalog (`repro lint`)",
        "",
        "<!-- GENERATED FILE - DO NOT EDIT. -->",
        "<!-- Regenerate with: python -m repro lint --markdown > docs/invariants.md -->",
        "",
        "The repo's bit-exactness guarantee rests on conventions no",
        "interpreter enforces. `python -m repro lint [paths]` turns them",
        "into machine-checked rules: every rule below is an AST check",
        "with a stable id, runnable standalone (`--select RULE`),",
        "excludable (`--ignore RULE`), and reportable as text or",
        "machine-readable JSON (`--format json`). Any finding makes the",
        "command exit nonzero; CI runs it before the test matrix.",
        "",
        "Suppress a deliberate violation inline with",
        "`# repro-lint: disable=RULE` (comma-separate several ids, no",
        "spaces) on the flagged line, and justify it in the same",
        "comment — an unexplained suppression is a review smell.",
        "",
        "| rule | severity | scope |",
        "|---|---|---|",
    ]
    for spec in rule_specs():
        lines.append(
            f"| [{spec.name}](#{spec.name}) | {spec.severity} "
            f"| {_scope_markdown(spec.scope)} |"
        )
    for spec in rule_specs():
        lines += [
            "",
            f"## {spec.name}",
            "",
            f"**{spec.summary}** (severity: {spec.severity}; scope: "
            f"{_scope_markdown(spec.scope)})",
            "",
            spec.rationale,
            "",
            f"Violation (as `{spec.example_path}`):",
            "",
            "```python",
            spec.example.rstrip("\n"),
            "```",
            "",
            f"Fix: {spec.fix}",
            "",
            f"Suppress with `# repro-lint: disable={spec.name}` on the",
            "flagged line, with an inline justification.",
        ]
    lines.append("")
    return "\n".join(lines)


__all__ = [
    "Checker",
    "LintRule",
    "get_rule",
    "register_rule",
    "rule_names",
    "rule_specs",
    "rules_markdown",
]
