"""Render a :class:`~repro.analysis.engine.LintResult` for humans or tools.

Text findings use the conventional ``path:line:col: rule [severity]
message`` shape (clickable in editors, greppable in CI logs) followed
by a one-line summary; JSON is the :meth:`LintResult.to_dict` envelope,
which round-trips through the fixture tests so the schema cannot drift
silently.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult


def format_text(result: LintResult) -> str:
    """Human-readable report, one line per finding plus a summary.

    Example
    -------
    >>> print(format_text(LintResult(findings=(), files_checked=2,
    ...                              suppressed=0)), end="")
    2 files checked: clean
    """
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}"
        for f in result.findings
    ]
    plural = "" if result.files_checked == 1 else "s"
    if result.findings:
        summary = (
            f"{result.files_checked} file{plural} checked: "
            f"{len(result.findings)} finding(s)"
        )
    else:
        summary = f"{result.files_checked} file{plural} checked: clean"
    if result.suppressed:
        summary += f" ({result.suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def format_json(result: LintResult) -> str:
    """Machine-readable report (the ``--format json`` payload).

    Example
    -------
    >>> import json
    >>> payload = json.loads(format_json(
    ...     LintResult(findings=(), files_checked=1, suppressed=0)))
    >>> payload["version"], payload["findings"]
    (1, [])
    """
    return json.dumps(result.to_dict(), indent=2)


__all__ = ["format_json", "format_text"]
