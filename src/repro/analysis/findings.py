"""Data model of the invariant analyzer: findings and file contexts.

A *rule* (see :mod:`repro.analysis.registry`) inspects one parsed file
— a :class:`FileContext` — and emits zero or more raw ``(line, col,
message)`` triples.  The engine (:mod:`repro.analysis.engine`) stamps
each triple with the rule's identity and severity into an immutable
:class:`Finding`, applies inline suppressions, and assembles the
:class:`~repro.analysis.engine.LintResult` the reporters render.

Everything here is a frozen value object with a JSON-safe ``to_dict``,
mirroring the repo's spec discipline (``repro.api.spec``): findings can
be diffed between runs, shipped as ``--format json``, and asserted on
in fixture tests without touching reporter formatting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Tuple

#: Rule severities.  ``error`` findings are invariant breaks; ``warning``
#: findings are discipline gaps.  Both make ``repro lint`` exit nonzero —
#: severity is reporting metadata, not an exit-code switch.
SEVERITIES: Tuple[str, ...] = ("error", "warning")

#: What a rule checker emits: ``(line, col, message)``, 1-based line.
RawFinding = Tuple[int, int, str]


@dataclass(frozen=True)
class FileContext:
    """One parsed file as the rules see it.

    Attributes
    ----------
    path:
        The path as given on the command line (used for reporting).
    relpath:
        Resolved POSIX path string used for rule scope matching.
    source:
        The file's full text.
    tree:
        The parsed :class:`ast.Module`.
    """

    path: str
    relpath: str
    source: str
    tree: ast.Module


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Example
    -------
    >>> finding = Finding(rule="rng-discipline", severity="error",
    ...                   path="src/x.py", line=3, col=0, message="boom")
    >>> finding.to_dict()["rule"]
    'rng-discipline'
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe plain-dict form (the ``--format json`` cell shape)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable report order: path, then location, then rule id."""
        return (self.path, self.line, self.col, self.rule)


__all__ = ["FileContext", "Finding", "RawFinding", "SEVERITIES"]
