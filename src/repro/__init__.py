"""repro — Graph Priority Sampling for massive graph streams.

A faithful, production-quality reproduction of

    Nesreen K. Ahmed, Nick Duffield, Theodore L. Willke, Ryan A. Rossi.
    "On Sampling from Massive Graph Streams." VLDB 2017.

Quick start
-----------
>>> from repro import (AdjacencyGraph, EdgeStream, GraphPrioritySampler,
...                    PostStreamEstimator, triangle_count)
>>> graph = AdjacencyGraph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 0)])
>>> stream = EdgeStream.from_graph(graph, seed=42)
>>> sampler = GraphPrioritySampler(capacity=10, seed=7)
>>> sampler.process_stream(stream)
>>> estimates = PostStreamEstimator(sampler).estimate()
>>> estimates.triangles.value == triangle_count(graph)  # no overflow: exact
True

Package map
-----------
``repro.api``         Declarative experiment facade: method/weight
                      registries, ``RunSpec`` value objects and the
                      ``run(spec) -> RunReport`` interpreter.
``repro.core``        GPS sampler, weight functions, post-/in-stream
                      estimation, generalised subgraph estimators.
``repro.graph``       Graph substrate: adjacency structure, exact counting,
                      generators, edge-list I/O.
``repro.streams``     Edge-stream model and transforms.
``repro.engine``      High-throughput stream driving and parallel
                      multi-seed replication.
``repro.serve``       Live sampling service: concurrent ingestion with
                      epoch-stamped snapshot queries (``ServeSpec`` +
                      ``SamplingService`` + ``python -m repro serve``).
``repro.stats``       HT estimation, confidence intervals, error metrics.
``repro.baselines``   TRIEST, MASCOT, NSAMP, JSP, Buriol, gSH, uniform
                      reservoir — the paper's comparison methods.
``repro.experiments`` Dataset registry and the harnesses regenerating every
                      table and figure in the paper.
"""

from repro.api.execution import RunReport, run
from repro.api.registry import register_method, register_weight
from repro.api.spec import RunSpec
from repro.core.adaptive import AdaptiveTriangleWeight
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.estimates import GraphEstimates, SubgraphEstimate
from repro.core.in_stream import InStreamEstimator
from repro.core.local import LocalTriangleEstimator
from repro.core.motifs import MotifCensusEstimator
from repro.core.post_stream import PostStreamEstimator
from repro.core.priority_sampler import GraphPrioritySampler, UpdateResult
from repro.core.records import EdgeRecord
from repro.core.reservoir import SampledGraph
from repro.core.snapshot_counters import InStreamCliqueCounter
from repro.core.subgraphs import CliqueEstimator, StarEstimator
from repro.core.weights import (
    AttributeWeight,
    LinearCombinationWeight,
    TriangleWeight,
    UniformWeight,
    WedgeWeight,
)
from repro.engine.replication import (
    MetricSummary,
    ReplicatedRunner,
    ReplicatedSummary,
    ReplicationResult,
)
from repro.engine.stream_engine import EngineStats, StreamEngine
from repro.serve import SamplingService, ServeSpec
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.exact import (
    ExactStreamCounter,
    GraphStatistics,
    compute_statistics,
    global_clustering,
    triangle_count,
    wedge_count,
)
from repro.streams.stream import EdgeStream

__version__ = "1.0.0"

__all__ = [
    "RunReport",
    "RunSpec",
    "register_method",
    "register_weight",
    "run",
    "AdaptiveTriangleWeight",
    "load_checkpoint",
    "save_checkpoint",
    "LocalTriangleEstimator",
    "MotifCensusEstimator",
    "InStreamCliqueCounter",
    "GraphEstimates",
    "SubgraphEstimate",
    "InStreamEstimator",
    "PostStreamEstimator",
    "GraphPrioritySampler",
    "UpdateResult",
    "EdgeRecord",
    "SampledGraph",
    "CliqueEstimator",
    "StarEstimator",
    "AttributeWeight",
    "LinearCombinationWeight",
    "TriangleWeight",
    "UniformWeight",
    "WedgeWeight",
    "EngineStats",
    "MetricSummary",
    "ReplicatedRunner",
    "ReplicatedSummary",
    "ReplicationResult",
    "StreamEngine",
    "SamplingService",
    "ServeSpec",
    "AdjacencyGraph",
    "ExactStreamCounter",
    "GraphStatistics",
    "compute_statistics",
    "global_clustering",
    "triangle_count",
    "wedge_count",
    "EdgeStream",
    "__version__",
]
