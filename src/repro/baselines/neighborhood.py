"""NSAMP: neighbourhood sampling for triangle counting.

Pavan, Tangwongsan, Tirthapura, Wu.  "Counting and Sampling Triangles from
a Graph Stream", VLDB 2013 — reference [30] of the GPS paper; compared in
Table 2.

The method runs ``r`` independent estimator instances.  Each instance:

1. holds a *level-1* edge ``e1`` — a uniform reservoir sample of size 1
   over all arrivals (replacement probability 1/t);
2. holds a *level-2* edge ``e2`` — a uniform reservoir sample of size 1
   over the ``c`` edges adjacent to ``e1`` that arrived after ``e1``;
3. flags the instance *closed* once the unique edge completing the
   ``(e1, e2)`` wedge arrives.

At query time the instance's estimate is ``t·c`` if closed else 0, and the
global estimate is the mean over instances: a triangle with edge arrival
order ``t1 < t2 < t3`` is captured exactly when ``e1 = t1`` (prob 1/t) and
``e2 = t2`` (prob 1/c), giving an unbiased HT estimate.

The per-arrival work touches all ``r`` instances, which is exactly why the
paper finds NSAMP slow without bulk processing; we express the bulk idea
as numpy vectorisation (DESIGN.md Sec. 5), keeping per-edge cost O(r) in
C rather than Python.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BatchProcessMixin
from repro.graph.edge import Node, is_self_loop


class NeighborhoodSampling(BatchProcessMixin):
    """NSAMP with ``r`` vectorised estimator instances (integer node ids).

    Node labels must be non-negative integers (the experiment datasets
    are generated that way; use stream relabelling otherwise).
    """

    __slots__ = (
        "_r",
        "_rng",
        "_arrivals",
        "_e1",
        "_e2",
        "_count",
        "_closing",
        "_closed",
    )

    def __init__(self, instances: int, seed: Optional[int] = None) -> None:
        if instances <= 0:
            raise ValueError("need at least one estimator instance")
        self._r = instances
        self._rng = np.random.default_rng(seed)
        self._arrivals = 0
        # Level-1 / level-2 edges as endpoint arrays; -1 = unset.
        self._e1 = np.full((2, instances), -1, dtype=np.int64)
        self._e2 = np.full((2, instances), -1, dtype=np.int64)
        # c: adjacent arrivals observed since e1 was sampled.
        self._count = np.zeros(instances, dtype=np.int64)
        # Closing pair (canonical min/max) of the current (e1, e2) wedge.
        self._closing = np.full((2, instances), -1, dtype=np.int64)
        self._closed = np.zeros(instances, dtype=bool)

    def process(self, u: Node, v: Node) -> None:
        if is_self_loop(u, v):
            return
        a, b = (u, v) if u <= v else (v, u)
        self._arrivals += 1
        t = self._arrivals

        # 1. Triangle closure: does (a, b) close the current wedge?
        hits = (self._closing[0] == a) & (self._closing[1] == b)
        if hits.any():
            self._closed |= hits

        # 2. Level-1 replacement with probability 1/t.
        replace1 = self._rng.random(self._r) < (1.0 / t)

        # 3. Level-2 update for instances keeping e1 and adjacent to (a, b).
        e1u, e1v = self._e1
        adjacent = (
            ~replace1
            & (e1u >= 0)
            & ((e1u == a) | (e1v == a) | (e1u == b) | (e1v == b))
        )
        if adjacent.any():
            self._count[adjacent] += 1
            take2 = adjacent & (
                self._rng.random(self._r) * self._count < 1.0
            )
            if take2.any():
                self._e2[0, take2] = a
                self._e2[1, take2] = b
                self._closed[take2] = False
                self._update_closing(take2)

        if replace1.any():
            self._e1[0, replace1] = a
            self._e1[1, replace1] = b
            self._e2[0, replace1] = -1
            self._e2[1, replace1] = -1
            self._count[replace1] = 0
            self._closing[0, replace1] = -1
            self._closing[1, replace1] = -1
            self._closed[replace1] = False

    def _update_closing(self, mask: np.ndarray) -> None:
        """Closing edge = symmetric difference of (e1, e2) endpoints."""
        e1u, e1v = self._e1[0, mask], self._e1[1, mask]
        e2u, e2v = self._e2[0, mask], self._e2[1, mask]
        # Shared endpoint: the one of e1 appearing in e2.
        shared_is_u = (e1u == e2u) | (e1u == e2v)
        open1 = np.where(shared_is_u, e1v, e1u)
        shared = np.where(shared_is_u, e1u, e1v)
        open2 = np.where(e2u == shared, e2v, e2u)
        lo = np.minimum(open1, open2)
        hi = np.maximum(open1, open2)
        self._closing[0, mask] = lo
        self._closing[1, mask] = hi

    @property
    def triangle_estimate(self) -> float:
        """Mean of per-instance estimates ``t·c·I(closed)``."""
        if self._arrivals == 0:
            return 0.0
        values = np.where(self._closed, self._count, 0).astype(np.float64)
        return float(values.mean() * self._arrivals)

    @property
    def instances(self) -> int:
        return self._r

    @property
    def arrivals(self) -> int:
        return self._arrivals

    @property
    def closed_instances(self) -> int:
        return int(self._closed.sum())
