"""Baseline streaming triangle-count estimators compared in the paper.

Every baseline implements the small :class:`~repro.baselines.base.StreamingTriangleCounter`
protocol — ``process(u, v)`` per arrival plus a ``triangle_estimate`` — so
the experiment harness can drive GPS and the baselines identically:

* :class:`~repro.baselines.triest.TriestBase` /
  :class:`~repro.baselines.triest.TriestImpr` — reservoir sampling with
  eager counting (De Stefani et al., KDD 2016); Tables 2 and 3.
* :class:`~repro.baselines.mascot.Mascot` /
  :class:`~repro.baselines.mascot.MascotBasic` — independent edge sampling
  (Lim & Kang, KDD 2015); Table 2.
* :class:`~repro.baselines.neighborhood.NeighborhoodSampling` — NSAMP
  (Pavan et al., VLDB 2013), vectorised r-estimator array; Table 2.
* :class:`~repro.baselines.jha.JhaSeshadhriPinar` — wedge-sampling
  Streaming-Triangles (KDD 2013); discussed in Sec. 6.
* :class:`~repro.baselines.buriol.BuriolSampler` — Buriol et al. (PODS
  2006) adapted to the adjacency model; reproduces the paper's remark that
  it rarely finds triangles.
* :class:`~repro.baselines.sample_hold.GraphSampleHold` — gSH(p, q)
  (Ahmed et al., KDD 2014).
* :class:`~repro.baselines.reservoir.ReservoirEdgeSampler` — classic
  uniform reservoir (Vitter 1985), the shared substrate.
"""

from repro.baselines.base import StreamingTriangleCounter
from repro.baselines.buriol import BuriolSampler
from repro.baselines.jha import JhaSeshadhriPinar
from repro.baselines.mascot import Mascot, MascotBasic
from repro.baselines.neighborhood import NeighborhoodSampling
from repro.baselines.reservoir import ReservoirEdgeSampler
from repro.baselines.sample_hold import GraphSampleHold
from repro.baselines.triest import TriestBase, TriestImpr

__all__ = [
    "StreamingTriangleCounter",
    "BuriolSampler",
    "JhaSeshadhriPinar",
    "Mascot",
    "MascotBasic",
    "NeighborhoodSampling",
    "ReservoirEdgeSampler",
    "GraphSampleHold",
    "TriestBase",
    "TriestImpr",
]
