"""TRIEST: reservoir-based streaming triangle counting.

De Stefani, Epasto, Riondato, Upfal.  "TRIÈST: Counting Local and Global
Triangles in Fully-Dynamic Streams with Fixed Memory Size", KDD 2016 —
reference [16] of the GPS paper and its main baseline in Tables 2–3.

Insertion-only variants:

* :class:`TriestBase` — keeps a uniform reservoir of M edges; a counter τ
  tracks the triangles *within the sample*, updated on every
  insertion/removal; the global estimate rescales by
  ``ξ(t) = max(1, t(t−1)(t−2) / (M(M−1)(M−2)))``, the inverse probability
  that all three edges of a triangle are in the reservoir.
* :class:`TriestImpr` — on every arrival (sampled or not) adds
  ``η(t)·|N̂(u) ∩ N̂(v)|`` with ``η(t) = max(1, (t−1)(t−2)/(M(M−1)))`` to
  the running estimate, which is never decremented.  Unbiased with lower
  variance than the base variant (the paper's Table 3 shows exactly this
  ordering, with GPS below both).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.baselines.base import BatchProcessMixin
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import EdgeKey, Node, canonical_edge, is_self_loop


class TriestBase(BatchProcessMixin):
    """TRIEST-BASE (insertion-only)."""

    __slots__ = ("_capacity", "_rng", "_edges", "_graph", "_arrivals", "_tau")

    def __init__(self, capacity: int, seed: Optional[int] = None) -> None:
        if capacity < 3:
            raise ValueError("TRIEST needs capacity >= 3")
        self._capacity = capacity
        self._rng = random.Random(seed)
        self._edges: List[EdgeKey] = []
        self._graph = AdjacencyGraph()
        self._arrivals = 0
        self._tau = 0  # triangles fully inside the current sample

    def process(self, u: Node, v: Node) -> None:
        if is_self_loop(u, v) or self._graph.has_edge(u, v):
            return
        self._arrivals += 1
        key = canonical_edge(u, v)
        if len(self._edges) < self._capacity:
            self._insert(key)
            return
        # Keep the arrival with probability M/t, evicting a uniform victim.
        if self._rng.randrange(self._arrivals) < self._capacity:
            victim_slot = self._rng.randrange(self._capacity)
            victim = self._edges[victim_slot]
            self._graph.remove_edge(*victim)
            self._tau -= self._graph.triangles_through(*victim)
            self._edges[victim_slot] = key
            self._tau += self._graph.triangles_through(*key)
            self._graph.add_edge(*key)

    def _insert(self, key: EdgeKey) -> None:
        self._tau += self._graph.triangles_through(*key)
        self._graph.add_edge(*key)
        self._edges.append(key)

    @property
    def triangle_estimate(self) -> float:
        return self._tau * self._scale()

    def _scale(self) -> float:
        t, m = self._arrivals, self._capacity
        if t <= m:
            return 1.0
        return max(
            1.0,
            (t * (t - 1) * (t - 2)) / (m * (m - 1) * (m - 2)),
        )

    @property
    def sample_triangles(self) -> int:
        """τ: triangles currently inside the reservoir."""
        return self._tau

    @property
    def arrivals(self) -> int:
        return self._arrivals

    @property
    def sample_size(self) -> int:
        return len(self._edges)


class TriestImpr(BatchProcessMixin):
    """TRIEST-IMPR: eager weighted counting, never decremented."""

    __slots__ = ("_capacity", "_rng", "_edges", "_graph", "_arrivals", "_estimate")

    def __init__(self, capacity: int, seed: Optional[int] = None) -> None:
        if capacity < 2:
            raise ValueError("TRIEST-IMPR needs capacity >= 2")
        self._capacity = capacity
        self._rng = random.Random(seed)
        self._edges: List[EdgeKey] = []
        self._graph = AdjacencyGraph()
        self._arrivals = 0
        self._estimate = 0.0

    def process(self, u: Node, v: Node) -> None:
        if is_self_loop(u, v) or self._graph.has_edge(u, v):
            return
        self._arrivals += 1
        t, m = self._arrivals, self._capacity
        eta = max(1.0, ((t - 1) * (t - 2)) / (m * (m - 1)))
        shared = self._graph.triangles_through(u, v)
        if shared:
            self._estimate += eta * shared
        key = canonical_edge(u, v)
        if len(self._edges) < m:
            self._graph.add_edge(*key)
            self._edges.append(key)
        elif self._rng.randrange(t) < m:
            slot = self._rng.randrange(m)
            self._graph.remove_edge(*self._edges[slot])
            self._edges[slot] = key
            self._graph.add_edge(*key)

    @property
    def triangle_estimate(self) -> float:
        return self._estimate

    @property
    def arrivals(self) -> int:
        return self._arrivals

    @property
    def sample_size(self) -> int:
        return len(self._edges)
