"""MASCOT: independent edge sampling for triangle counting.

Lim, Kang.  "MASCOT: Memory-efficient and Accurate Sampling for Counting
Local Triangles in Graph Streams", KDD 2015 — reference [27] of the GPS
paper; compared in Table 2.

* :class:`Mascot` — the improved "unconditional counting" variant: on
  every arrival the estimate grows by ``Δ/p²`` where Δ is the number of
  sampled triangles the edge closes, *then* the edge is stored with
  probability p.  A triangle is counted when its last edge arrives and
  both earlier edges were stored (probability p²), so 1/p² is the HT
  weight.
* :class:`MascotBasic` — the MASCOT-C candidate: the edge is stored first
  (probability p) and the triangles it closes count ``1/p³`` each (all
  three coin flips must succeed).  Higher variance; kept for completeness.

Memory is not fixed: the sampled graph holds Binomial(t, p) edges.  The
harness picks p so the *expected* sample matches the other methods'
budgets, mirroring the paper's "observe the actual sample size used by
MASCOT" protocol.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.baselines.base import BatchProcessMixin
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import Node, is_self_loop


class Mascot(BatchProcessMixin):
    """MASCOT (count-then-sample, 1/p² weighting).

    Tracks both the global estimate and the *local* per-node estimates the
    original paper targets: when the arriving edge (u, v) closes Δ sampled
    triangles, u and v are credited Δ/p² and every common sampled
    neighbour w is credited 1/p².
    """

    __slots__ = ("_p", "_rng", "_graph", "_arrivals", "_estimate", "_local")

    def __init__(self, probability: float, seed: Optional[int] = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("sampling probability must be in (0, 1]")
        self._p = probability
        self._rng = random.Random(seed)
        self._graph = AdjacencyGraph()
        self._arrivals = 0
        self._estimate = 0.0
        self._local: Dict[Node, float] = {}

    def process(self, u: Node, v: Node) -> None:
        if is_self_loop(u, v) or self._graph.has_edge(u, v):
            return
        self._arrivals += 1
        common = self._graph.common_neighbors(u, v)
        if common:
            weight = 1.0 / (self._p * self._p)
            credit = len(common) * weight
            self._estimate += credit
            self._local[u] = self._local.get(u, 0.0) + credit
            self._local[v] = self._local.get(v, 0.0) + credit
            for w in common:
                self._local[w] = self._local.get(w, 0.0) + weight
        if self._rng.random() < self._p:
            self._graph.add_edge(u, v)

    def local_estimate(self, node: Node) -> float:
        """Unbiased local triangle-count estimate for ``node``."""
        return self._local.get(node, 0.0)

    @property
    def local_estimates(self) -> Dict[Node, float]:
        """Per-node triangle estimates (nodes with non-zero credit only)."""
        return dict(self._local)

    @property
    def triangle_estimate(self) -> float:
        return self._estimate

    @property
    def probability(self) -> float:
        return self._p

    @property
    def sample_size(self) -> int:
        return self._graph.num_edges

    @property
    def arrivals(self) -> int:
        return self._arrivals


class MascotBasic(BatchProcessMixin):
    """MASCOT-C (sample-then-count, 1/p³ weighting)."""

    __slots__ = ("_p", "_rng", "_graph", "_arrivals", "_estimate")

    def __init__(self, probability: float, seed: Optional[int] = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("sampling probability must be in (0, 1]")
        self._p = probability
        self._rng = random.Random(seed)
        self._graph = AdjacencyGraph()
        self._arrivals = 0
        self._estimate = 0.0

    def process(self, u: Node, v: Node) -> None:
        if is_self_loop(u, v) or self._graph.has_edge(u, v):
            return
        self._arrivals += 1
        if self._rng.random() >= self._p:
            return
        closed = self._graph.triangles_through(u, v)
        if closed:
            self._estimate += closed / (self._p ** 3)
        self._graph.add_edge(u, v)

    @property
    def triangle_estimate(self) -> float:
        return self._estimate

    @property
    def probability(self) -> float:
        return self._p

    @property
    def sample_size(self) -> int:
        return self._graph.num_edges

    @property
    def arrivals(self) -> int:
        return self._arrivals
