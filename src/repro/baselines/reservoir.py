"""Classic uniform reservoir sampling over edges (Vitter 1985).

The substrate under TRIEST and the JSP edge reservoir, and the degenerate
GPS case ``W ≡ 1`` (paper remark after Algorithm 1).  Maintains a uniform
without-replacement sample of fixed capacity over a stream, with an
adjacency view so triangle queries against the sample stay O(min degree).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.baselines.base import BatchProcessMixin
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import EdgeKey, Node, canonical_edge, is_self_loop


class ReservoirEdgeSampler(BatchProcessMixin):
    """Uniform fixed-size edge sample with an adjacency view.

    After ``t`` arrivals each seen edge is in the sample with probability
    ``min(1, capacity/t)``; every ``capacity``-subset is equally likely.
    """

    __slots__ = ("_capacity", "_rng", "_edges", "_graph", "_arrivals")

    def __init__(self, capacity: int, seed: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._rng = random.Random(seed)
        self._edges: List[EdgeKey] = []
        self._graph = AdjacencyGraph()
        self._arrivals = 0

    def process(self, u: Node, v: Node) -> Optional[Tuple[bool, Optional[EdgeKey]]]:
        """Offer an edge; returns (kept, replaced_edge) or None if skipped."""
        if is_self_loop(u, v) or self._graph.has_edge(u, v):
            return None
        self._arrivals += 1
        key = canonical_edge(u, v)
        if len(self._edges) < self._capacity:
            self._edges.append(key)
            self._graph.add_edge(*key)
            return True, None
        slot = self._rng.randrange(self._arrivals)
        if slot >= self._capacity:
            return False, None
        replaced = self._edges[slot]
        self._graph.remove_edge(*replaced)
        self._edges[slot] = key
        self._graph.add_edge(*key)
        return True, replaced

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def arrivals(self) -> int:
        return self._arrivals

    @property
    def sample_size(self) -> int:
        return len(self._edges)

    @property
    def graph(self) -> AdjacencyGraph:
        """Adjacency view over the current sample (live; do not mutate)."""
        return self._graph

    @property
    def inclusion_probability(self) -> float:
        """Per-edge marginal inclusion probability min(1, m/t)."""
        if self._arrivals <= self._capacity:
            return 1.0
        return self._capacity / self._arrivals

    def edges(self) -> Iterator[EdgeKey]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)
