"""Streaming-Triangles: wedge sampling in the adjacency stream model.

Jha, Seshadhri, Pinar.  "A Space Efficient Streaming Algorithm for
Triangle Counting using the Birthday Paradox", KDD 2013 — reference [23]
of the GPS paper (discussed in Sec. 6's baseline study).

Two reservoirs:

* an **edge reservoir** of ``edge_slots`` cells, each an independent
  size-1 uniform reservoir over the stream (so cells may coincide);
* a **wedge reservoir** of ``wedge_slots`` cells holding wedges formed by
  edge-reservoir cells, each with an ``is_closed`` bit.

Per arrival ``e_t``:

1. wedges in the wedge reservoir closed by ``e_t`` get their bit set
   (O(1) via a closing-pair index);
2. each edge cell is replaced by ``e_t`` with probability 1/t; when any
   cell changes, ``tot_wedges`` (wedges among the reservoir edges) is
   recomputed from the cell-degree table;
3. each wedge cell is replaced, with probability ``N_t / tot_wedges``, by
   a uniform wedge formed by ``e_t`` with the edge reservoir (``N_t`` is
   the number of such wedges).

Estimates at time ``t`` (paper's eqs.):
``κ̂ = 3·ρ`` (transitivity) and
``T̂ = ρ·t²/(s_e(s_e−1))·tot_wedges`` (triangles), with ``ρ`` the closed
fraction of the wedge reservoir.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import BatchProcessMixin
from repro.graph.edge import EdgeKey, Node, canonical_edge, is_self_loop

Wedge = Tuple[EdgeKey, EdgeKey, Node]  # (edge1, edge2, centre)


class JhaSeshadhriPinar(BatchProcessMixin):
    """Streaming-Triangles (JSP) transitivity / triangle estimator."""

    __slots__ = (
        "_edge_slots",
        "_wedge_slots",
        "_rng",
        "_arrivals",
        "_edges",
        "_degrees",
        "_tot_wedges",
        "_wedges",
        "_is_closed",
        "_closing_index",
    )

    def __init__(
        self,
        edge_slots: int,
        wedge_slots: int,
        seed: Optional[int] = None,
    ) -> None:
        if edge_slots < 2 or wedge_slots < 1:
            raise ValueError("need edge_slots >= 2 and wedge_slots >= 1")
        self._edge_slots = edge_slots
        self._wedge_slots = wedge_slots
        self._rng = random.Random(seed)
        self._arrivals = 0
        self._edges: List[Optional[EdgeKey]] = [None] * edge_slots
        self._degrees: Dict[Node, int] = defaultdict(int)
        self._tot_wedges = 0
        self._wedges: List[Optional[Wedge]] = [None] * wedge_slots
        self._is_closed: List[bool] = [False] * wedge_slots
        # closing pair -> wedge slots waiting for that edge
        self._closing_index: Dict[EdgeKey, Set[int]] = defaultdict(set)

    # ------------------------------------------------------------------
    def process(self, u: Node, v: Node) -> None:
        if is_self_loop(u, v):
            return
        self._arrivals += 1
        t = self._arrivals
        key = canonical_edge(u, v)

        # 1. Close wedges whose missing edge just arrived.
        slots = self._closing_index.get(key)
        if slots:
            for slot in slots:
                self._is_closed[slot] = True
            del self._closing_index[key]

        # 2. Per-cell edge reservoir update.
        changed = False
        for cell in range(self._edge_slots):
            if self._rng.random() * t < 1.0:
                old = self._edges[cell]
                if old is not None:
                    self._degrees[old[0]] -= 1
                    self._degrees[old[1]] -= 1
                self._edges[cell] = key
                self._degrees[key[0]] += 1
                self._degrees[key[1]] += 1
                changed = True
        if changed:
            self._tot_wedges = sum(
                d * (d - 1) // 2 for d in self._degrees.values() if d > 1
            )

        # 3. Wedge reservoir update.  New wedges exist only when e_t
        # actually entered the edge reservoir; otherwise the wedge
        # population is unchanged and the reservoir must not churn.
        if not changed:
            return
        new_wedges = self._wedges_with(key)
        n_t = len(new_wedges)
        if n_t == 0 or self._tot_wedges == 0:
            return
        accept_prob = min(1.0, n_t / self._tot_wedges)
        for slot in range(self._wedge_slots):
            if self._rng.random() < accept_prob:
                self._replace_wedge(slot, new_wedges[self._rng.randrange(n_t)])

    def _wedges_with(self, key: EdgeKey) -> List[Wedge]:
        """All wedges formed by ``key`` with the current edge reservoir."""
        out: List[Wedge] = []
        u, v = key
        for cell_key in self._edges:
            if cell_key is None or cell_key == key:
                continue
            shared = set(cell_key) & {u, v}
            if len(shared) == 1:
                out.append((key, cell_key, shared.pop()))
        return out

    def _replace_wedge(self, slot: int, wedge: Wedge) -> None:
        old = self._wedges[slot]
        if old is not None and not self._is_closed[slot]:
            old_closing = self._closing_pair(old)
            waiting = self._closing_index.get(old_closing)
            if waiting is not None:
                waiting.discard(slot)
                if not waiting:
                    del self._closing_index[old_closing]
        self._wedges[slot] = wedge
        self._is_closed[slot] = False
        self._closing_index[self._closing_pair(wedge)].add(slot)

    @staticmethod
    def _closing_pair(wedge: Wedge) -> EdgeKey:
        edge1, edge2, centre = wedge
        open1 = edge1[0] if edge1[1] == centre else edge1[1]
        open2 = edge2[0] if edge2[1] == centre else edge2[1]
        return canonical_edge(open1, open2)

    # ------------------------------------------------------------------
    @property
    def closed_fraction(self) -> float:
        """ρ: closed fraction of occupied wedge cells."""
        occupied = [i for i, w in enumerate(self._wedges) if w is not None]
        if not occupied:
            return 0.0
        return sum(1 for i in occupied if self._is_closed[i]) / len(occupied)

    @property
    def transitivity_estimate(self) -> float:
        """κ̂ = 3·ρ."""
        return 3.0 * self.closed_fraction

    @property
    def triangle_estimate(self) -> float:
        """T̂ = ρ · t²/(s_e(s_e−1)) · tot_wedges."""
        t = self._arrivals
        if t < 2 or self._tot_wedges == 0:
            return 0.0
        s_e = self._edge_slots
        return (
            self.closed_fraction
            * (t * t / (s_e * (s_e - 1)))
            * self._tot_wedges
        )

    @property
    def arrivals(self) -> int:
        return self._arrivals

    @property
    def total_reservoir_wedges(self) -> int:
        return self._tot_wedges
