"""Graph Sample-and-Hold: gSH(p, q).

Ahmed, Duffield, Neville, Kompella.  "Graph Sample and Hold: A Framework
for Big-Graph Analytics", KDD 2014 — reference [3] of the GPS paper and
its closest methodological antecedent.

An arriving edge that is *adjacent to the sampled graph* is held with
probability ``q``; a non-adjacent edge is sampled with probability ``p``
(typically p < q, biasing retention towards structure already seen).  The
selection probability of every held edge is recorded at admission, so any
subgraph fully inside the sample gets the HT product estimate
``Π 1/p_i`` — unbiased because each edge's probability is measurable with
respect to the history before its arrival (the same conditioning argument
GPS generalises with its martingale formulation).

Memory is not fixed (expected ≈ p·t + held adjacency mass); the harness
tunes ``p`` to meet a budget, as with MASCOT.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.baselines.base import BatchProcessMixin
from repro.graph.adjacency import AdjacencyGraph
from repro.graph.edge import EdgeKey, Node, canonical_edge, is_self_loop


class GraphSampleHold(BatchProcessMixin):
    """gSH(p, q) with HT triangle/edge estimation."""

    __slots__ = ("_p", "_q", "_rng", "_graph", "_probs", "_arrivals")

    def __init__(
        self,
        p: float,
        q: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        if q is None:
            q = 1.0
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        self._p = p
        self._q = q
        self._rng = random.Random(seed)
        self._graph = AdjacencyGraph()
        self._probs: Dict[EdgeKey, float] = {}
        self._arrivals = 0

    def process(self, u: Node, v: Node) -> None:
        if is_self_loop(u, v) or self._graph.has_edge(u, v):
            return
        self._arrivals += 1
        adjacent = self._graph.degree(u) > 0 or self._graph.degree(v) > 0
        prob = self._q if adjacent else self._p
        if self._rng.random() < prob:
            self._graph.add_edge(u, v)
            self._probs[canonical_edge(u, v)] = prob

    # ------------------------------------------------------------------
    # HT estimates over the held graph
    # ------------------------------------------------------------------
    @property
    def edge_estimate(self) -> float:
        """HT estimate of the number of edges seen: Σ 1/p_i."""
        return sum(1.0 / p for p in self._probs.values())

    @property
    def triangle_estimate(self) -> float:
        """HT estimate of triangles: Σ over held triangles Π 1/p_i."""
        total = 0.0
        for u, v in self._graph.edges():
            key_uv = canonical_edge(u, v)
            inv_uv = 1.0 / self._probs[key_uv]
            for w in self._graph.common_neighbors(u, v):
                inv_uw = 1.0 / self._probs[canonical_edge(u, w)]
                inv_vw = 1.0 / self._probs[canonical_edge(v, w)]
                total += inv_uv * inv_uw * inv_vw
        return total / 3.0  # each triangle visited once per edge

    @property
    def sample_size(self) -> int:
        return self._graph.num_edges

    @property
    def arrivals(self) -> int:
        return self._arrivals

    @property
    def graph(self) -> AdjacencyGraph:
        return self._graph
