"""Buriol et al. one-pass triangle estimation, adjacency-model adaptation.

Buriol, Frahling, Leonardi, Marchetti-Spaccamela, Sohler.  "Counting
Triangles in Data Streams", PODS 2006 — reference [10] of the GPS paper.
The original algorithm targets the *incidence* stream model; the GPS paper
notes that in the adjacency model it "fails to find a triangle most of the
time, producing low quality estimates (mostly zero estimates)".  This
implementation reproduces that diagnosis.

Each of ``r`` instances samples a uniform edge ``e = (a, b)`` (size-1
reservoir, replacement probability 1/t) and a uniform candidate third node
``w`` from the node universe, then watches for *both* closing edges
``(a, w)`` and ``(b, w)`` after ``e``.  A triangle with arrival order
``t1 < t2 < t3`` is detected only via ``e = t1`` and ``w`` the opposite
node — probability ``(1/t)·(1/(n−2))`` — so a hit contributes
``t·(n−2)``; the global estimate is the mean over instances.  With
realistic ``t``/``n`` nearly every instance misses, hence the mostly-zero
estimates.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set

from repro.baselines.base import BatchProcessMixin
from repro.graph.edge import Node, is_self_loop


class _Instance:
    __slots__ = ("a", "b", "w", "seen_aw", "seen_bw")

    def __init__(self) -> None:
        self.a: Optional[Node] = None
        self.b: Optional[Node] = None
        self.w: Optional[Node] = None
        self.seen_aw = False
        self.seen_bw = False

    @property
    def hit(self) -> bool:
        return self.seen_aw and self.seen_bw


class BuriolSampler(BatchProcessMixin):
    """Buriol-style estimator array for adjacency streams.

    ``nodes`` fixes the candidate universe for the third node (the
    incidence-model algorithm knows V up front); when omitted, nodes
    observed so far are used, which adds a small bias that is irrelevant
    against the dominant miss rate.
    """

    __slots__ = ("_r", "_rng", "_arrivals", "_instances", "_universe", "_seen", "_fixed")

    def __init__(
        self,
        instances: int,
        nodes: Optional[Sequence[Node]] = None,
        seed: Optional[int] = None,
    ) -> None:
        if instances <= 0:
            raise ValueError("need at least one instance")
        self._r = instances
        self._rng = random.Random(seed)
        self._arrivals = 0
        self._instances = [_Instance() for _ in range(instances)]
        self._universe: List[Node] = list(nodes) if nodes else []
        self._seen: Set[Node] = set(self._universe)
        self._fixed = nodes is not None

    def process(self, u: Node, v: Node) -> None:
        if is_self_loop(u, v):
            return
        self._arrivals += 1
        t = self._arrivals
        if not self._fixed:
            for node in (u, v):
                if node not in self._seen:
                    self._seen.add(node)
                    self._universe.append(node)

        for inst in self._instances:
            # Closure watching with the current (a, b, w) triple.
            if inst.w is not None:
                if {u, v} == {inst.a, inst.w}:
                    inst.seen_aw = True
                elif {u, v} == {inst.b, inst.w}:
                    inst.seen_bw = True
            # Level-1 reservoir over edges.
            if self._rng.random() * t < 1.0:
                inst.a, inst.b = u, v
                inst.seen_aw = inst.seen_bw = False
                inst.w = self._pick_third(u, v)

    def _pick_third(self, u: Node, v: Node) -> Optional[Node]:
        candidates = self._universe
        if len(candidates) < 3:
            return None
        while True:
            w = candidates[self._rng.randrange(len(candidates))]
            if w != u and w != v:
                return w

    @property
    def triangle_estimate(self) -> float:
        """Mean over instances of ``t·(n−2)·I(hit)``."""
        n = len(self._universe)
        if self._arrivals == 0 or n < 3:
            return 0.0
        hits = sum(1 for inst in self._instances if inst.hit)
        return hits * self._arrivals * (n - 2) / self._r

    @property
    def hit_count(self) -> int:
        return sum(1 for inst in self._instances if inst.hit)

    @property
    def num_nodes_seen(self) -> int:
        return len(self._universe)

    @property
    def arrivals(self) -> int:
        return self._arrivals
