"""Common protocol for streaming triangle counters.

The experiment harness (Tables 2–3) drives every method through this
interface so that workloads, memory budgets and timing are measured
identically for GPS and all baselines.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Tuple, runtime_checkable

from repro.graph.edge import Node


@runtime_checkable
class StreamingTriangleCounter(Protocol):
    """One-pass triangle-count estimator over an adjacency edge stream."""

    def process(self, u: Node, v: Node) -> None:
        """Consume one arriving edge."""
        ...

    @property
    def triangle_estimate(self) -> float:
        """Current estimate of the number of triangles seen so far."""
        ...


def drive(counter: StreamingTriangleCounter, edges: Iterable[Tuple[Node, Node]]) -> None:
    """Feed a whole stream through ``counter``."""
    for u, v in edges:
        counter.process(u, v)
