"""Common protocol for streaming triangle counters.

The experiment harness (Tables 2–3) and the :mod:`repro.api` facade drive
every method through this interface so that workloads, memory budgets and
timing are measured identically for GPS and all baselines.

:class:`BatchProcessMixin` supplies the ``process_many`` batched entry
point the :class:`~repro.engine.stream_engine.StreamEngine` fast path looks
for: every baseline inherits it, so engine-driven runs feed baselines in
checkpoint-to-checkpoint batches (one Python call per batch) instead of
falling back to the per-edge loop.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Tuple, runtime_checkable

from repro.graph.edge import Node


@runtime_checkable
class StreamingTriangleCounter(Protocol):
    """One-pass triangle-count estimator over an adjacency edge stream."""

    def process(self, u: Node, v: Node) -> None:
        """Consume one arriving edge."""
        ...

    @property
    def triangle_estimate(self) -> float:
        """Current estimate of the number of triangles seen so far."""
        ...


class BatchProcessMixin:
    """Default batched driving loop for protocol counters.

    ``process_many`` is semantically a plain per-edge loop — it exists so
    the engine can hand a whole batch across one call boundary with the
    bound ``process`` method hoisted.  Counters with a genuinely vectorised
    update (the GPS sampler, :class:`~repro.core.in_stream.InStreamEstimator`)
    override it; everything else inherits this one.
    """

    __slots__ = ()

    def process_many(self, edges: Iterable[Tuple[Node, Node]]) -> int:
        """Feed every edge to :meth:`process`; returns the number consumed."""
        process = self.process
        consumed = 0
        for u, v in edges:
            process(u, v)
            consumed += 1
        return consumed


__all__ = ["BatchProcessMixin", "StreamingTriangleCounter"]
