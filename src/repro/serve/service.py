"""The live sampling service: concurrent ingestion + snapshot queries.

:class:`SamplingService` wires the pieces together:

* a **pump thread** iterates the spec's block source and feeds a
  bounded :class:`queue.Queue` (backpressure: when the drive falls
  behind, the pump blocks and the stall is counted);
* a **drive thread** runs the chunked :class:`~repro.engine.StreamEngine`
  over the queue, and — via the engine's ``on_chunk`` observer —
  captures an immutable :class:`~repro.serve.snapshot.SampleSnapshot`
  every ``snapshot_every`` blocks, publishing it to a
  :class:`~repro.serve.snapshot.SnapshotStore` under a monotone epoch;
* **query callers** (any number of threads) read the latest snapshot
  with one lock acquisition and compute answers entirely on private
  copies, so queries never pause ingestion and ingestion never tears a
  query's view.

Shutdown is graceful by default: ``stop(drain=True)`` stops the pump,
lets the drive consume everything already queued, publishes a final
snapshot and joins both threads; ``drain=False`` aborts, discarding
queued blocks at the next block boundary.  The final snapshot of a
drained finite source is bit-identical to a batch ``run()`` over the
same stream — the concurrency stress tests pin this down prefix by
prefix.

The pump is *supervised* when the spec grants ``source_retries``: an
ingestion error restarts the stream from the recorded position — the
service counts edges as it enqueues them, re-iterates the source and
skips exactly that many, so the sampler sees one gapless stream and
the final answer stays bit-identical to a fault-free run.  Restarts
wait a capped exponential backoff with seeded jitter; a burst of
consecutive failures beyond the budget degrades to the historical
fail-fast shape (error recorded, surfaced by :meth:`join`).
"""

from __future__ import annotations

import queue
import random
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.stream_engine import EngineStats, StreamEngine
from repro.faults.backoff import backoff_delay
from repro.faults.injector import FaultInjector
from repro.serve.snapshot import SampleSnapshot, SnapshotStore
from repro.serve.source import make_source
from repro.serve.spec import ServeSpec

#: Ops answered without a published snapshot (everything else reads one).
_SNAPSHOT_FREE_OPS = ("ping", "spec", "status", "wait", "drain", "shutdown")


class _QueueStream:
    """Engine-facing view of the ingestion queue.

    ``chunks(size)`` yields the transport's blocks as they arrive
    (``size`` is advisory — the chunked pipeline is bit-identical
    across block boundaries); a ``None`` sentinel ends the stream, and
    the abort event ends it early at the next boundary.
    """

    def __init__(
        self,
        blocks: "queue.Queue",
        abort: threading.Event,
        poll_interval: float,
    ) -> None:
        self._queue = blocks
        self._abort = abort
        self._poll = poll_interval

    def _next(self):
        while True:
            if self._abort.is_set():
                return None
            try:
                return self._queue.get(timeout=self._poll)
            except queue.Empty:
                continue

    def chunks(self, size: int):
        while True:
            block = self._next()
            if block is None:
                return
            yield block

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        from repro.streams.chunks import pairs_from_columns

        for us, vs in self.chunks(0):
            yield from pairs_from_columns(us, vs)


class SamplingService:
    """A long-running sampler answering queries while it ingests.

    Construct from a :class:`ServeSpec` (optionally injecting a
    prebuilt block ``source``), then either use as a context manager or
    call :meth:`start` / :meth:`stop` explicitly::

        spec = ServeSpec(source="synthetic", budget=500, max_edges=100_000)
        with SamplingService(spec) as service:
            service.wait_for_epoch(2)
            answer = service.query({"op": "estimates"})

    Every query answer carries the snapshot's ``epoch`` and
    ``stream_position``, so callers can reason about freshness and
    tests can match answers against prefix-exact batch runs.
    """

    def __init__(
        self,
        spec: ServeSpec,
        source: Optional[Any] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        from repro.api.registry import get_method, get_weight

        method = get_method(spec.method)
        if method.needs_stream_length:
            raise ValueError(
                f"method {spec.method!r} interprets its budget via the "
                "stream length, which a live service cannot know; pick a "
                "length-free method (the GPS family)"
            )
        weight_fn = None
        if spec.weight is not None:
            if not method.uses_weight:
                raise ValueError(
                    f"method {spec.method!r} does not use a weight function"
                )
            weight_fn = get_weight(spec.weight).factory()
        kwargs: Dict[str, Any] = {}
        if method.uses_weight:
            kwargs["weight_fn"] = weight_fn
        if method.supports_core:
            kwargs["core"] = "compact"
        counter = method.factory(
            spec.budget, 0, spec.sampler_seed, **kwargs
        )
        sampler = getattr(counter, "sampler", counter)
        if not hasattr(sampler, "snapshot_arrays"):
            raise ValueError(
                f"method {spec.method!r} does not expose the compact "
                "snapshot surface (snapshot_arrays); the serving layer "
                "supports the GPS family"
            )

        self._spec = spec
        self._counter = counter
        self._source = (
            source if source is not None else make_source(spec, faults=faults)
        )
        self._store = SnapshotStore()
        self._queue: "queue.Queue" = queue.Queue(maxsize=spec.queue_chunks)
        self._stop_event = threading.Event()
        self._abort = threading.Event()
        self._engine = StreamEngine(counter, chunk_size=spec.chunk_size)
        self._engine.on_chunk(self._chunk_boundary)
        self._pump_thread: Optional[threading.Thread] = None
        self._drive_thread: Optional[threading.Thread] = None
        self._stats: Optional[EngineStats] = None
        self._errors: List[str] = []
        self._stalls = 0
        self._blocks_ingested = 0
        self._edges_ingested = 0
        self._blocks_dropped = 0
        self._pump_restarts = 0
        self._pump_retrying = False
        self._chunks_processed = 0
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ServeSpec:
        return self._spec

    @property
    def store(self) -> SnapshotStore:
        return self._store

    @property
    def stats(self) -> Optional[EngineStats]:
        """Engine timing of the finished drive (None while running)."""
        return self._stats

    @property
    def stalls(self) -> int:
        """How often the pump hit the full queue (backpressure events)."""
        return self._stalls

    @property
    def pump_restarts(self) -> int:
        """Supervised pump restarts after ingestion errors."""
        return self._pump_restarts

    @property
    def blocks_dropped(self) -> int:
        """Blocks lost to an abort while the queue stayed full."""
        return self._blocks_dropped

    def start(self) -> "SamplingService":
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        # Epoch 1 is the empty reservoir: queries are answerable from
        # the first instant, with no startup race.
        self._publish()
        self._pump_thread = threading.Thread(
            target=self._pump, name="repro-serve-pump", daemon=True
        )
        self._drive_thread = threading.Thread(
            target=self._drive, name="repro-serve-drive", daemon=True
        )
        self._pump_thread.start()
        self._drive_thread.start()
        return self

    def __enter__(self) -> "SamplingService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def running(self) -> bool:
        drive = self._drive_thread
        return drive is not None and drive.is_alive()

    def stop(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop ingestion and join.

        ``drain=True`` finishes a *bounded* source completely (the pump
        runs the stream to its end) and, for unbounded sources, stops
        the pump at the next block and lets the drive consume whatever
        is queued; ``drain=False`` aborts, discarding queued blocks at
        the next block boundary.
        """
        bounded = bool(getattr(self._source, "bounded", False))
        if not (drain and bounded):
            self._stop_event.set()
            source_stop = getattr(self._source, "stop", None)
            if source_stop is not None:
                source_stop()
        if not drain:
            self._abort.set()
        self.join(timeout)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for both threads; re-raises the first worker error."""
        for thread in (self._pump_thread, self._drive_thread):
            if thread is not None:
                thread.join(timeout)
        if self._errors:
            raise RuntimeError(
                f"service worker failed: {'; '.join(self._errors)}"
            )

    # ------------------------------------------------------------------
    # Worker threads
    # ------------------------------------------------------------------
    def _put(self, block: Any) -> bool:
        try:
            self._queue.put_nowait(block)
            return True
        except queue.Full:
            self._stalls += 1
        poll = self._spec.poll_interval
        while not self._abort.is_set():
            try:
                self._queue.put(block, timeout=poll)
                return True
            except queue.Full:
                continue
        return False

    def _resumed_blocks(self, skip: int) -> Iterator[Any]:
        """A fresh pass over the source, minus ``skip`` leading edges.

        Every shipped source restarts deterministically from the start
        of its stream when re-iterated (seeded generators regenerate,
        files re-read, the reference socket feed replays), so skipping
        the edges already enqueued resumes exactly where the failed
        pass stopped — partial blocks are sliced, never re-delivered.
        """
        remaining = skip
        for us, vs in self._source:
            if remaining <= 0:
                yield us, vs
            elif len(us) <= remaining:
                remaining -= len(us)
            else:
                yield us[remaining:], vs[remaining:]
                remaining = 0

    def _pump(self) -> None:
        spec = self._spec
        rng = random.Random(spec.sampler_seed)
        failures = 0
        try:
            while True:
                try:
                    for block in self._resumed_blocks(self._edges_ingested):
                        if self._stop_event.is_set():
                            return
                        if not self._put(block):
                            # Aborted mid-backpressure: the block never
                            # reached the queue.  Count it — a silent
                            # drop is indistinguishable from ingestion.
                            self._blocks_dropped += 1
                            return
                        self._blocks_ingested += 1
                        self._edges_ingested += len(block[0])
                        failures = 0
                    return  # clean end of stream
                except Exception as exc:  # noqa: BLE001 - retried/surfaced
                    if (
                        self._stop_event.is_set()
                        or failures >= spec.source_retries
                    ):
                        self._errors.append(f"pump: {exc!r}")
                        return
                    failures += 1
                    self._pump_restarts += 1
                    self._pump_retrying = True
                    delay = backoff_delay(
                        failures - 1,
                        base=spec.retry_backoff,
                        cap=spec.retry_backoff_cap,
                        rng=rng,
                    )
                    stopped = self._stop_event.wait(delay)
                    self._pump_retrying = False
                    if stopped:
                        return
        except Exception as exc:  # noqa: BLE001 - surfaced via join()
            self._errors.append(f"pump: {exc!r}")
        finally:
            self._put(None)  # end-of-stream sentinel

    def _drive(self) -> None:
        try:
            stream = _QueueStream(
                self._queue, self._abort, self._spec.poll_interval
            )
            self._stats = self._engine.run(stream)
            # Final state: the drained reservoir, even when the last
            # segment didn't land on a snapshot_every boundary.
            self._publish()
        except Exception as exc:  # noqa: BLE001 - surfaced via join()
            self._errors.append(f"drive: {exc!r}")

    def _chunk_boundary(self, position: int) -> None:
        self._chunks_processed += 1
        if self._chunks_processed % self._spec.snapshot_every == 0:
            self._publish()

    def _publish(self) -> None:
        snapshot = SampleSnapshot.capture(
            self._counter, out=self._store.take_buffer()
        )
        self._store.publish(snapshot)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def latest(self) -> Optional[SampleSnapshot]:
        return self._store.latest()

    def wait_for_epoch(
        self, epoch: int, timeout: Optional[float] = None
    ) -> Optional[SampleSnapshot]:
        return self._store.wait_for(epoch, timeout)

    def status(self) -> Dict[str, Any]:
        latest = self._store.latest()
        source_state = getattr(self._source, "state", None)
        retrying = self._pump_retrying or source_state == "retrying"
        degraded = bool(self._errors) or source_state == "failed"
        return {
            "running": self.running,
            "epoch": latest.epoch if latest is not None else 0,
            "stream_position": (
                latest.stream_position if latest is not None else 0
            ),
            "sample_size": latest.sample_size if latest is not None else 0,
            "blocks_ingested": self._blocks_ingested,
            "chunks_processed": self._chunks_processed,
            "backpressure": {
                "stalls": self._stalls,
                "queue_depth": self._queue.qsize(),
                "queue_chunks": self._spec.queue_chunks,
            },
            "resilience": {
                "degraded": degraded,
                "retrying": retrying,
                "pump_restarts": self._pump_restarts,
                "blocks_dropped": self._blocks_dropped,
                "edges_ingested": self._edges_ingested,
                "source_state": source_state,
                "source_reconnects": getattr(
                    self._source, "reconnects", 0
                ),
                "source_rotations": getattr(self._source, "rotations", 0),
            },
            "errors": list(self._errors),
        }

    def query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one JSON-shaped query; never raises for bad requests."""
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        if not isinstance(op, str):
            return {"ok": False, "error": "request needs a string 'op'"}
        try:
            return self._dispatch(op, request)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {"ok": False, "op": op, "error": repr(exc)}

    def _dispatch(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        if op == "ping":
            return {"ok": True, "op": op, "epoch": self._store.epoch}
        if op == "spec":
            return {"ok": True, "op": op, "spec": self._spec.to_dict()}
        if op == "status":
            return {"ok": True, "op": op, "status": self.status()}
        if op == "wait":
            target = int(request.get("epoch", self._store.epoch + 1))
            timeout = request.get("timeout")
            snapshot = self._store.wait_for(
                target, None if timeout is None else float(timeout)
            )
            if snapshot is None:
                return {
                    "ok": False,
                    "op": op,
                    "error": f"timed out waiting for epoch {target}",
                    "epoch": self._store.epoch,
                }
            return self._head(op, snapshot)
        if op == "drain":
            self.stop(drain=True)
            return {"ok": True, "op": op, "status": self.status()}
        if op == "shutdown":
            self.stop(drain=False)
            return {"ok": True, "op": op, "status": self.status()}

        snapshot = self._snapshot_for(request)
        if snapshot is None:
            return {"ok": False, "op": op, "error": "no snapshot published"}
        if op == "estimates":
            from repro.api.execution import _estimates_dict

            head = self._head(op, snapshot)
            head["estimates"] = _estimates_dict(snapshot.estimates())
            return head
        if op == "occupancy":
            head = self._head(op, snapshot)
            head["occupancy"] = snapshot.occupancy()
            return head
        if op == "local":
            return self._local(op, snapshot, request)
        if op == "motifs":
            return self._motifs(op, snapshot)
        return {
            "ok": False,
            "op": op,
            "error": f"unknown op {op!r}; known ops: ping, spec, status, "
            "wait, estimates, occupancy, local, motifs, drain, shutdown",
        }

    def _snapshot_for(
        self, request: Dict[str, Any]
    ) -> Optional[SampleSnapshot]:
        epoch = request.get("epoch")
        if epoch is None:
            return self._store.latest()
        timeout = request.get("timeout")
        return self._store.wait_for(
            int(epoch), None if timeout is None else float(timeout)
        )

    @staticmethod
    def _head(op: str, snapshot: SampleSnapshot) -> Dict[str, Any]:
        return {
            "ok": True,
            "op": op,
            "epoch": snapshot.epoch,
            "stream_position": snapshot.stream_position,
            "sample_size": snapshot.sample_size,
            "threshold": snapshot.threshold,
        }

    def _local(
        self,
        op: str,
        snapshot: SampleSnapshot,
        request: Dict[str, Any],
    ) -> Dict[str, Any]:
        from repro.core.local import LocalTriangleEstimator

        estimator = LocalTriangleEstimator(snapshot)
        triangles = estimator.node_triangles()
        wedges = estimator.node_wedges()
        head = self._head(op, snapshot)
        node = request.get("node")
        if node is not None:
            head["node"] = node
            head["triangles"] = triangles.get(node, 0.0)
            head["wedges"] = wedges.get(node, 0.0)
            return head
        head["triangles"] = triangles
        head["wedges"] = wedges
        return head

    def _motifs(self, op: str, snapshot: SampleSnapshot) -> Dict[str, Any]:
        from repro.core.motifs import MotifCensusEstimator

        head = self._head(op, snapshot)
        census = {}
        for name, est in MotifCensusEstimator(snapshot).estimate().items():
            low, high = est.confidence_bounds()
            census[name] = {
                "value": est.value,
                "variance": est.variance,
                "ci_low": low,
                "ci_high": high,
            }
        head["motifs"] = census
        return head


__all__ = ["SamplingService"]
