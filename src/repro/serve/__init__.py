"""Live sampling service: continuous ingestion, snapshot queries.

The paper's setting is *continuous* monitoring of graph statistics
over unbounded streams; this package turns the repo's batch machinery
into a long-running service.  A pump thread feeds a bounded queue from
a pluggable block source (file / file tail / synthetic generator /
TCP line feed), a drive thread runs the chunked
:class:`~repro.engine.StreamEngine` over it, and immutable epoch-
stamped reservoir snapshots are published at chunk boundaries so any
number of query threads read consistent state without ever pausing
ingestion.

Entry points: the programmatic :class:`SamplingService`, the
``python -m repro serve`` JSON-lines protocol (stdin or TCP), and
``python -m repro bench serve`` for the sustained-load ladder.
"""

from repro.serve.service import SamplingService
from repro.serve.snapshot import SampleSnapshot, SnapshotStore
from repro.serve.source import (
    FileTailSource,
    ResolvedSource,
    SocketLineSource,
    SyntheticSource,
    make_source,
)
from repro.serve.spec import ServeSpec

__all__ = [
    "SamplingService",
    "SampleSnapshot",
    "SnapshotStore",
    "ServeSpec",
    "SyntheticSource",
    "ResolvedSource",
    "FileTailSource",
    "SocketLineSource",
    "make_source",
]
