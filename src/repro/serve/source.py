"""Pluggable edge sources for the live sampling service.

A source is an iterable of *blocks*.  Columnar sources yield
``(u_col, v_col)`` int32 array pairs — the input shape of the compact
core's vectorised admission gate — and declare ``columnar = True`` so
the service drives them through the chunked engine pipeline.  Block
sizes are a transport detail: the chunked pipeline is bit-identical
across block boundaries, so a socket source trickling 7-edge blocks
and a file source streaming 16384-edge blocks produce the same sample
under the same seeds.

Four shapes ship here, resolved from :class:`~repro.serve.spec.ServeSpec`
by :func:`make_source`:

* :class:`ResolvedSource` — a dataset-registry name or edge-list file,
  resolved and seed-permuted exactly like the batch executor, so the
  service's final answer is bit-identical to ``run()`` on the same spec
  fields.
* :class:`FileTailSource` — a file streamed lazily block-by-block; with
  ``follow=True`` it keeps polling for appended lines (``tail -f``) and
  survives log rotation and truncation by reopening the path.
* :class:`SyntheticSource` — a seeded uniform edge generator, the
  steady-state stream of the sustained-load benchmark.
* :class:`SocketLineSource` — a ``tcp://host:port`` line protocol
  (``u v`` per line; comment lines ignored), for live feeds.  With a
  retry budget it is *supervised*: a dropped connection reconnects
  under capped exponential backoff with seeded jitter, and — because
  the reference feed shape replays from the start of the stream — the
  source skips the edges it already delivered, so the downstream
  sampler never sees a duplicate or a gap.

Every source accepts an optional :class:`~repro.faults.FaultInjector`
and consults it per raw block, which is how the chaos suite provokes
disconnects and stalls deterministically (see :mod:`repro.faults`).
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import IO, Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.faults.backoff import backoff_delay
from repro.faults.injector import FaultInjector, inject_source_faults
from repro.serve.spec import SYNTHETIC_SOURCE, TCP_PREFIX, ServeSpec
from repro.streams.chunks import DEFAULT_CHUNK_SIZE

#: One columnar ingestion block.
Block = Tuple[np.ndarray, np.ndarray]

#: Injection site label shared by every serve-layer source.
SOURCE_SITE = "serve-source"


def _limit_blocks(
    blocks: Iterator[Block], max_edges: Optional[int]
) -> Iterator[Block]:
    """Truncate a block iterator to ``max_edges`` total edges."""
    if max_edges is None:
        yield from blocks
        return
    remaining = max_edges
    for us, vs in blocks:
        if remaining <= 0:
            return
        if len(us) > remaining:
            yield us[:remaining], vs[:remaining]
            return
        remaining -= len(us)
        yield us, vs


def _with_faults(
    blocks: Iterator[Block],
    injector: Optional[FaultInjector],
    poll_interval: float,
) -> Iterator[Block]:
    """Thread a source's raw blocks through the fault injector, if any."""
    if injector is None:
        return blocks
    return inject_source_faults(
        blocks, injector, SOURCE_SITE, poll_interval=poll_interval
    )


class SyntheticSource:
    """Seeded uniform edge blocks over ``nodes`` int labels.

    Deterministic in ``(seed, chunk_size, nodes)``: block *k* is always
    the same int32 column pair, so two services over the same spec see
    the same stream.  Unbounded unless ``max_edges`` caps it — the
    shape of the paper's "unbounded stream" setting and the
    steady-state load generator of ``bench serve``.
    """

    columnar = True

    def __init__(
        self,
        nodes: int,
        seed: Optional[int],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_edges: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if nodes < 2:
            raise ValueError("nodes must be at least 2")
        self.bounded = max_edges is not None
        self._nodes = nodes
        self._seed = 0 if seed is None else seed
        self._chunk_size = chunk_size
        self._max_edges = max_edges
        self._faults = faults

    def _blocks(self) -> Iterator[Block]:
        rng = np.random.RandomState(self._seed)
        size = self._chunk_size
        nodes = self._nodes
        while True:
            us = rng.randint(0, nodes, size=size).astype(np.int32)
            vs = rng.randint(0, nodes, size=size).astype(np.int32)
            yield us, vs

    def __iter__(self) -> Iterator[Block]:
        return _limit_blocks(
            _with_faults(self._blocks(), self._faults, 0.01),
            self._max_edges,
        )


class ResolvedSource:
    """The batch executor's edge population, streamed as blocks.

    Resolution and permutation defer to the same helpers the batch
    ``run()`` path uses, so a service over a finite resolved source
    ends in exactly the arrival order a :class:`~repro.api.RunSpec`
    with the same ``source``/``stream_seed`` would replay.
    """

    columnar = True
    bounded = True

    def __init__(
        self,
        source: str,
        stream_seed: Optional[int],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_edges: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self._source = source
        self._stream_seed = stream_seed
        self._chunk_size = chunk_size
        self._max_edges = max_edges
        self._faults = faults

    def __iter__(self) -> Iterator[Block]:
        # Lazy imports: execution pulls the dataset registry.
        from repro.api.execution import _permute, _resolve_edges

        edges = _resolve_edges(self._source, None)
        stream = _permute(edges, self._stream_seed)
        return _limit_blocks(
            _with_faults(stream.chunks(self._chunk_size), self._faults, 0.01),
            self._max_edges,
        )


class FileTailSource:
    """Lazy block reads from an edge-list file, optionally following.

    Without ``follow`` this is a lazy pass over the file (arrival order
    = file order, matching ``stream_seed=None`` batch semantics).  With
    ``follow`` the source polls for appended complete lines after
    end-of-file until :meth:`stop` is called — the live-tail shape for
    services fed by log shippers.

    A followed file survives the two mutations log shippers perform:

    * **rotation** — the path now names a different inode (the old file
      was renamed away and a fresh one created); the source reopens the
      path and reads the new file from its start;
    * **truncation** — same inode, but the on-disk size fell below the
      read position (copytruncate rotation); the source reopens and
      re-reads from offset zero, which is exactly the writer's restart.

    Either reopen increments :attr:`rotations` and clears the carried
    partial line — a torn tail of the old file is not data.
    """

    columnar = True

    def __init__(
        self,
        path: str,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_edges: Optional[int] = None,
        follow: bool = False,
        poll_interval: float = 0.05,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.bounded = not follow
        self._path = path
        self._chunk_size = chunk_size
        self._max_edges = max_edges
        self._follow = follow
        self._poll = poll_interval
        self._stop = threading.Event()
        self._faults = faults
        #: Times the followed file was reopened after rotation/truncation.
        self.rotations = 0

    def stop(self) -> None:
        """End a ``follow`` pass at the next poll."""
        self._stop.set()

    def _parse(self, lines: List[str]) -> Optional[Block]:
        us: List[int] = []
        vs: List[int] = []
        for line in lines:
            parts = line.split()
            if len(parts) < 2 or parts[0].startswith("#"):
                continue
            us.append(int(parts[0]))
            vs.append(int(parts[1]))
        if not us:
            return None
        return (
            np.asarray(us, dtype=np.int32),
            np.asarray(vs, dtype=np.int32),
        )

    def _reopen_if_rotated(self, handle: IO[str]) -> Tuple[IO[str], bool]:
        """Detect rotation/truncation of the followed path.

        Returns ``(handle, reopened)``; on a reopen the returned handle
        reads the current file from offset zero.  A transiently missing
        path (mid-rotation gap) is not an error — the next poll retries.
        """
        try:
            disk = os.stat(self._path)
        except OSError:
            return handle, False
        here = os.fstat(handle.fileno())
        if disk.st_ino == here.st_ino and disk.st_size >= handle.tell():
            return handle, False
        handle.close()
        self.rotations += 1
        return open(self._path, "r", encoding="utf-8"), True

    def _blocks(self) -> Iterator[Block]:
        if not self._follow:
            from repro.graph.io import iter_edge_chunks

            yield from iter_edge_chunks(self._path, self._chunk_size)
            return
        handle = open(self._path, "r", encoding="utf-8")
        try:
            pending: List[str] = []
            carry = ""
            while not self._stop.is_set():
                text = handle.read()
                if text:
                    lines = (carry + text).split("\n")
                    carry = lines.pop()  # tail without newline yet
                    pending.extend(lines)
                    while len(pending) >= self._chunk_size:
                        block = self._parse(pending[: self._chunk_size])
                        del pending[: self._chunk_size]
                        if block is not None:
                            yield block
                    continue
                # Quiet file: flush what we have, then poll.
                if pending:
                    block = self._parse(pending)
                    pending = []
                    if block is not None:
                        yield block
                handle, reopened = self._reopen_if_rotated(handle)
                if reopened:
                    carry = ""
                    continue
                self._stop.wait(self._poll)
            if pending:
                block = self._parse(pending)
                if block is not None:
                    yield block
        finally:
            handle.close()

    def __iter__(self) -> Iterator[Block]:
        return _limit_blocks(
            _with_faults(self._blocks(), self._faults, self._poll),
            self._max_edges,
        )


class SocketLineSource:
    """Edges from a ``tcp://host:port`` line feed (``u v`` per line).

    With ``retries=0`` (default) any connection error propagates — the
    historical fail-fast shape.  With a budget the source supervises
    itself: on ``ConnectionError``/``OSError`` it sleeps a capped
    exponential backoff (jitter from a seeded ``random.Random``, so two
    services with the same spec retry on the same schedule) and
    reconnects.  The reference feed replays the stream from its start
    on a new connection, so the source counts edges as it *delivers*
    them and skips exactly that many on reconnect — downstream sees one
    gapless, duplicate-free stream and the final sample stays
    bit-identical to the fault-free run.  A clean end-of-stream (the
    feeder closed after finishing) is a natural end, never retried.
    Delivered progress resets the consecutive-failure counter, so the
    budget bounds each failure *burst* rather than the stream lifetime.
    """

    columnar = True
    bounded = False

    def __init__(
        self,
        address: str,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_edges: Optional[int] = None,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        jitter_seed: int = 0,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if not address.startswith(TCP_PREFIX):
            raise ValueError(f"socket source needs a {TCP_PREFIX} address")
        rest = address[len(TCP_PREFIX):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"malformed socket address {address!r}; expected "
                f"{TCP_PREFIX}host:port"
            )
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self._host = host
        self._port = int(port)
        self._chunk_size = chunk_size
        self._max_edges = max_edges
        self._retries = retries
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._jitter_seed = jitter_seed
        self._faults = faults
        self._stop = threading.Event()
        #: Successful reconnections after a dropped connection.
        self.reconnects = 0
        #: ``"idle" | "streaming" | "retrying" | "closed" | "failed"``.
        self.state = "idle"

    def stop(self) -> None:
        """Abandon any backoff wait and end the stream."""
        self._stop.set()

    def _connection_blocks(self, skip_edges: int) -> Iterator[Block]:
        """Blocks from one connection, dropping ``skip_edges`` already-
        delivered leading edges (replay-from-start feed semantics)."""
        import socket

        us: List[int] = []
        vs: List[int] = []
        remaining = skip_edges
        with socket.create_connection((self._host, self._port)) as conn:
            with conn.makefile("r", encoding="utf-8") as handle:
                for line in handle:
                    parts = line.split()
                    if len(parts) < 2 or parts[0].startswith("#"):
                        continue
                    if remaining > 0:
                        remaining -= 1
                        continue
                    us.append(int(parts[0]))
                    vs.append(int(parts[1]))
                    if len(us) >= self._chunk_size:
                        yield (
                            np.asarray(us, dtype=np.int32),
                            np.asarray(vs, dtype=np.int32),
                        )
                        us, vs = [], []
        if us:
            yield (
                np.asarray(us, dtype=np.int32),
                np.asarray(vs, dtype=np.int32),
            )

    def _blocks(self) -> Iterator[Block]:
        rng = random.Random(self._jitter_seed)
        delivered_edges = 0
        delivered_blocks = 0
        failures = 0
        while True:
            try:
                for us, vs in self._connection_blocks(delivered_edges):
                    if self._faults is not None:
                        polls = self._faults.stall_polls(
                            SOURCE_SITE, delivered_blocks
                        )
                        if polls:
                            time.sleep(polls * 0.01)
                        if self._faults.source_fault(
                            SOURCE_SITE, delivered_blocks
                        ):
                            raise ConnectionError(
                                f"injected disconnect at {SOURCE_SITE} "
                                f"block {delivered_blocks}"
                            )
                    self.state = "streaming"
                    yield us, vs
                    delivered_edges += len(us)
                    delivered_blocks += 1
                    failures = 0
                self.state = "closed"
                return
            except (ConnectionError, OSError):
                if self._stop.is_set() or failures >= self._retries:
                    self.state = "failed"
                    raise
                failures += 1
                self.state = "retrying"
                delay = backoff_delay(
                    failures - 1,
                    base=self._backoff,
                    cap=self._backoff_cap,
                    rng=rng,
                )
                if self._stop.wait(delay):
                    self.state = "closed"
                    return
                self.reconnects += 1

    def __iter__(self) -> Iterator[Block]:
        return _limit_blocks(self._blocks(), self._max_edges)


def make_source(
    spec: ServeSpec, faults: Optional[FaultInjector] = None
) -> Any:
    """Resolve a spec's ``source`` field to a block source.

    ``faults`` threads a deterministic injector through to the source's
    per-block hook; production callers leave it ``None``.
    """
    if spec.source == SYNTHETIC_SOURCE:
        return SyntheticSource(
            spec.nodes,
            spec.stream_seed,
            chunk_size=spec.chunk_size,
            max_edges=spec.max_edges,
            faults=faults,
        )
    if spec.source.startswith(TCP_PREFIX):
        return SocketLineSource(
            spec.source,
            chunk_size=spec.chunk_size,
            max_edges=spec.max_edges,
            retries=spec.source_retries,
            backoff=spec.retry_backoff,
            backoff_cap=spec.retry_backoff_cap,
            jitter_seed=spec.sampler_seed,
            faults=faults,
        )
    if spec.follow:
        return FileTailSource(
            spec.source,
            chunk_size=spec.chunk_size,
            max_edges=spec.max_edges,
            follow=True,
            poll_interval=spec.poll_interval,
            faults=faults,
        )
    return ResolvedSource(
        spec.source,
        spec.stream_seed,
        chunk_size=spec.chunk_size,
        max_edges=spec.max_edges,
        faults=faults,
    )


__all__ = [
    "Block",
    "SOURCE_SITE",
    "SyntheticSource",
    "ResolvedSource",
    "FileTailSource",
    "SocketLineSource",
    "make_source",
]
