"""Pluggable edge sources for the live sampling service.

A source is an iterable of *blocks*.  Columnar sources yield
``(u_col, v_col)`` int32 array pairs — the input shape of the compact
core's vectorised admission gate — and declare ``columnar = True`` so
the service drives them through the chunked engine pipeline.  Block
sizes are a transport detail: the chunked pipeline is bit-identical
across block boundaries, so a socket source trickling 7-edge blocks
and a file source streaming 16384-edge blocks produce the same sample
under the same seeds.

Four shapes ship here, resolved from :class:`~repro.serve.spec.ServeSpec`
by :func:`make_source`:

* :class:`ResolvedSource` — a dataset-registry name or edge-list file,
  resolved and seed-permuted exactly like the batch executor, so the
  service's final answer is bit-identical to ``run()`` on the same spec
  fields.
* :class:`FileTailSource` — a file streamed lazily block-by-block; with
  ``follow=True`` it keeps polling for appended lines (``tail -f``).
* :class:`SyntheticSource` — a seeded uniform edge generator, the
  steady-state stream of the sustained-load benchmark.
* :class:`SocketLineSource` — a ``tcp://host:port`` line protocol
  (``u v`` per line; comment lines ignored), for live feeds.
"""

from __future__ import annotations

import threading
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.serve.spec import SYNTHETIC_SOURCE, TCP_PREFIX, ServeSpec
from repro.streams.chunks import DEFAULT_CHUNK_SIZE

#: One columnar ingestion block.
Block = Tuple[np.ndarray, np.ndarray]


def _limit_blocks(
    blocks: Iterator[Block], max_edges: Optional[int]
) -> Iterator[Block]:
    """Truncate a block iterator to ``max_edges`` total edges."""
    if max_edges is None:
        yield from blocks
        return
    remaining = max_edges
    for us, vs in blocks:
        if remaining <= 0:
            return
        if len(us) > remaining:
            yield us[:remaining], vs[:remaining]
            return
        remaining -= len(us)
        yield us, vs


class SyntheticSource:
    """Seeded uniform edge blocks over ``nodes`` int labels.

    Deterministic in ``(seed, chunk_size, nodes)``: block *k* is always
    the same int32 column pair, so two services over the same spec see
    the same stream.  Unbounded unless ``max_edges`` caps it — the
    shape of the paper's "unbounded stream" setting and the
    steady-state load generator of ``bench serve``.
    """

    columnar = True

    def __init__(
        self,
        nodes: int,
        seed: Optional[int],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_edges: Optional[int] = None,
    ) -> None:
        if nodes < 2:
            raise ValueError("nodes must be at least 2")
        self.bounded = max_edges is not None
        self._nodes = nodes
        self._seed = 0 if seed is None else seed
        self._chunk_size = chunk_size
        self._max_edges = max_edges

    def _blocks(self) -> Iterator[Block]:
        rng = np.random.RandomState(self._seed)
        size = self._chunk_size
        nodes = self._nodes
        while True:
            us = rng.randint(0, nodes, size=size).astype(np.int32)
            vs = rng.randint(0, nodes, size=size).astype(np.int32)
            yield us, vs

    def __iter__(self) -> Iterator[Block]:
        return _limit_blocks(self._blocks(), self._max_edges)


class ResolvedSource:
    """The batch executor's edge population, streamed as blocks.

    Resolution and permutation defer to the same helpers the batch
    ``run()`` path uses, so a service over a finite resolved source
    ends in exactly the arrival order a :class:`~repro.api.RunSpec`
    with the same ``source``/``stream_seed`` would replay.
    """

    columnar = True
    bounded = True

    def __init__(
        self,
        source: str,
        stream_seed: Optional[int],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_edges: Optional[int] = None,
    ) -> None:
        self._source = source
        self._stream_seed = stream_seed
        self._chunk_size = chunk_size
        self._max_edges = max_edges

    def __iter__(self) -> Iterator[Block]:
        # Lazy imports: execution pulls the dataset registry.
        from repro.api.execution import _permute, _resolve_edges

        edges = _resolve_edges(self._source, None)
        stream = _permute(edges, self._stream_seed)
        return _limit_blocks(
            stream.chunks(self._chunk_size), self._max_edges
        )


class FileTailSource:
    """Lazy block reads from an edge-list file, optionally following.

    Without ``follow`` this is a lazy pass over the file (arrival order
    = file order, matching ``stream_seed=None`` batch semantics).  With
    ``follow`` the source polls for appended complete lines after
    end-of-file until :meth:`stop` is called — the live-tail shape for
    services fed by log shippers.
    """

    columnar = True

    def __init__(
        self,
        path: str,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_edges: Optional[int] = None,
        follow: bool = False,
        poll_interval: float = 0.05,
    ) -> None:
        self.bounded = not follow
        self._path = path
        self._chunk_size = chunk_size
        self._max_edges = max_edges
        self._follow = follow
        self._poll = poll_interval
        self._stop = threading.Event()

    def stop(self) -> None:
        """End a ``follow`` pass at the next poll."""
        self._stop.set()

    def _parse(self, lines: List[str]) -> Optional[Block]:
        us: List[int] = []
        vs: List[int] = []
        for line in lines:
            parts = line.split()
            if len(parts) < 2 or parts[0].startswith("#"):
                continue
            us.append(int(parts[0]))
            vs.append(int(parts[1]))
        if not us:
            return None
        return (
            np.asarray(us, dtype=np.int32),
            np.asarray(vs, dtype=np.int32),
        )

    def _blocks(self) -> Iterator[Block]:
        if not self._follow:
            from repro.graph.io import iter_edge_chunks

            yield from iter_edge_chunks(self._path, self._chunk_size)
            return
        with open(self._path, "r", encoding="utf-8") as handle:
            pending: List[str] = []
            carry = ""
            while not self._stop.is_set():
                text = handle.read()
                if text:
                    lines = (carry + text).split("\n")
                    carry = lines.pop()  # tail without newline yet
                    pending.extend(lines)
                    while len(pending) >= self._chunk_size:
                        block = self._parse(pending[: self._chunk_size])
                        del pending[: self._chunk_size]
                        if block is not None:
                            yield block
                    continue
                # Quiet file: flush what we have, then poll.
                if pending:
                    block = self._parse(pending)
                    pending = []
                    if block is not None:
                        yield block
                self._stop.wait(self._poll)
            if pending:
                block = self._parse(pending)
                if block is not None:
                    yield block

    def __iter__(self) -> Iterator[Block]:
        return _limit_blocks(self._blocks(), self._max_edges)


class SocketLineSource:
    """Edges from a ``tcp://host:port`` line feed (``u v`` per line)."""

    columnar = True
    bounded = False

    def __init__(
        self,
        address: str,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_edges: Optional[int] = None,
    ) -> None:
        if not address.startswith(TCP_PREFIX):
            raise ValueError(f"socket source needs a {TCP_PREFIX} address")
        rest = address[len(TCP_PREFIX):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"malformed socket address {address!r}; expected "
                f"{TCP_PREFIX}host:port"
            )
        self._host = host
        self._port = int(port)
        self._chunk_size = chunk_size
        self._max_edges = max_edges

    def _blocks(self) -> Iterator[Block]:
        import socket

        us: List[int] = []
        vs: List[int] = []
        with socket.create_connection((self._host, self._port)) as conn:
            with conn.makefile("r", encoding="utf-8") as handle:
                for line in handle:
                    parts = line.split()
                    if len(parts) < 2 or parts[0].startswith("#"):
                        continue
                    us.append(int(parts[0]))
                    vs.append(int(parts[1]))
                    if len(us) >= self._chunk_size:
                        yield (
                            np.asarray(us, dtype=np.int32),
                            np.asarray(vs, dtype=np.int32),
                        )
                        us, vs = [], []
        if us:
            yield (
                np.asarray(us, dtype=np.int32),
                np.asarray(vs, dtype=np.int32),
            )

    def __iter__(self) -> Iterator[Block]:
        return _limit_blocks(self._blocks(), self._max_edges)


def make_source(spec: ServeSpec):
    """Resolve a spec's ``source`` field to a block source."""
    if spec.source == SYNTHETIC_SOURCE:
        return SyntheticSource(
            spec.nodes,
            spec.stream_seed,
            chunk_size=spec.chunk_size,
            max_edges=spec.max_edges,
        )
    if spec.source.startswith(TCP_PREFIX):
        return SocketLineSource(
            spec.source,
            chunk_size=spec.chunk_size,
            max_edges=spec.max_edges,
        )
    if spec.follow:
        return FileTailSource(
            spec.source,
            chunk_size=spec.chunk_size,
            max_edges=spec.max_edges,
            follow=True,
            poll_interval=spec.poll_interval,
        )
    return ResolvedSource(
        spec.source,
        spec.stream_seed,
        chunk_size=spec.chunk_size,
        max_edges=spec.max_edges,
    )


__all__ = [
    "Block",
    "SyntheticSource",
    "ResolvedSource",
    "FileTailSource",
    "SocketLineSource",
    "make_source",
]
