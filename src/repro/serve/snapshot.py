"""Versioned, copy-on-read snapshots of a live GPS reservoir.

The serving layer's central mechanism.  Ingestion mutates the compact
slot arrays continuously; queries must never observe a half-applied
admission.  Instead of locking the reservoir around every query, the
drive thread captures an immutable :class:`SampleSnapshot` at chunk
boundaries — when the counter is quiescent by construction — and
publishes it through a :class:`SnapshotStore` under a monotone epoch
counter.  Readers grab the latest snapshot with one lock acquisition
and then work entirely on private copies; a reader holding epoch *k*
keeps a consistent view forever, no matter how far ingestion advances.

Snapshots are cheap on the write side (``snapshot_arrays`` copies five
flat columns plus the order-preserving slot adjacency) and lazy on the
read side: the object-graph view and the retrospective estimate bundle
are materialised at most once per snapshot, on first use, and cached.
The store double-buffers the column arrays — when a snapshot is
garbage-collected its buffers return to a small free list, so a
steady-state service recycles two arenas instead of allocating per
publication.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Dict, List, Optional

from repro.core.compact import SlotArrays
from repro.core.estimates import GraphEstimates
from repro.core.records import EdgeRecord
from repro.graph.edge import Node


class SampleSnapshot:
    """One immutable, epoch-stamped view of a GPS reservoir.

    Implements the sampler read protocol (``sample`` / ``threshold`` /
    ``stream_position`` / ``sample_size``) that the retrospective
    estimators consume, so a snapshot plugs directly into
    :class:`~repro.core.post_stream.PostStreamEstimator`,
    :class:`~repro.core.local.LocalTriangleEstimator` and
    :class:`~repro.core.motifs.MotifCensusEstimator` — and their
    answers are bit-identical to a batch run over the same stream
    prefix, because the copied adjacency preserves the slot dict's
    insertion order (float accumulation order included).
    """

    __slots__ = (
        "epoch",
        "arrays",
        "adjacency",
        "_in_stream",
        "_graph",
        "_post",
        "__weakref__",
    )

    def __init__(
        self,
        arrays: SlotArrays,
        adjacency: Dict[Node, Dict[Node, int]],
        in_stream: Optional[GraphEstimates] = None,
        epoch: int = 0,
    ) -> None:
        self.epoch = epoch
        self.arrays = arrays
        self.adjacency = adjacency
        self._in_stream = in_stream
        self._graph: Optional[Any] = None
        self._post: Optional[GraphEstimates] = None

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        counter: Any,
        out: Optional[SlotArrays] = None,
        epoch: int = 0,
    ) -> "SampleSnapshot":
        """Freeze ``counter``'s reservoir state into a snapshot.

        ``counter`` is any registry-made GPS counter: the compact
        in-stream estimator (snapshotted with its O(1) Algorithm-3
        estimate bundle attached) or an adapter owning a bare compact
        sampler (``.sampler`` attribute; estimates then come lazily
        from the retrospective pass).  Must run while the counter is
        quiescent — the serving layer calls it from the drive thread at
        chunk boundaries.
        """
        sampler = getattr(counter, "sampler", counter)
        snapshot_arrays = getattr(sampler, "snapshot_arrays", None)
        if snapshot_arrays is None:
            raise TypeError(
                f"{type(sampler).__name__} has no snapshot_arrays(); the "
                "serving layer needs the compact core's snapshot surface"
            )
        arrays = snapshot_arrays(out)
        adjacency = sampler.snapshot_adjacency()
        estimates_fn = getattr(counter, "estimates", None)
        in_stream = estimates_fn() if estimates_fn is not None else None
        return cls(arrays, adjacency, in_stream=in_stream, epoch=epoch)

    # ------------------------------------------------------------------
    # Sampler read protocol (what the retrospective estimators consume)
    # ------------------------------------------------------------------
    @property
    def stream_position(self) -> int:
        return self.arrays.stream_position

    @property
    def sample_size(self) -> int:
        return self.arrays.size

    @property
    def threshold(self) -> float:
        return self.arrays.threshold

    @property
    def sample(self) -> Any:
        """The materialised object-graph view (built once, cached)."""
        return self.materialize()

    def materialize(self) -> Any:
        """Object-core view with the slot adjacency's iteration orders.

        The frozen twin of
        :meth:`repro.core.compact.CompactSample.materialize`: one shared
        :class:`EdgeRecord` per live slot, outer and inner dict orders
        copied from the reservoir at capture time, so every
        retrospective accumulation visits records in the exact order a
        batch pass over the same prefix would.
        """
        graph = self._graph
        if graph is None:
            from repro.core.reservoir import SampledGraph

            record_of = self.arrays.record
            records: Dict[int, EdgeRecord] = {}
            adj: Dict[Node, Dict[Node, EdgeRecord]] = {}
            for u, nbrs in self.adjacency.items():
                row: Dict[Node, EdgeRecord] = {}
                for v, slot in nbrs.items():
                    record = records.get(slot)
                    if record is None:
                        record = records[slot] = record_of(slot)
                    row[v] = record
                adj[u] = row
            graph = SampledGraph.from_adjacency(adj, len(records))
            self._graph = graph
        return graph

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def estimates(self) -> GraphEstimates:
        """Global triangle/wedge/clustering bundle for this epoch.

        In-stream counters answer O(1) from the bundle frozen at
        capture; bare samplers answer with one retrospective
        (Algorithm 2) pass over the materialised view, computed on
        first call and cached on the snapshot.
        """
        if self._in_stream is not None:
            return self._in_stream
        post = self._post
        if post is None:
            from repro.core.post_stream import PostStreamEstimator

            post = PostStreamEstimator(self).estimate()
            self._post = post
        return post

    def occupancy(self) -> Dict[str, Any]:
        """Reservoir occupancy facts (no estimation pass)."""
        capacity = self.arrays.capacity
        return {
            "epoch": self.epoch,
            "stream_position": self.stream_position,
            "sample_size": self.sample_size,
            "capacity": capacity,
            "fill": self.sample_size / capacity if capacity else 0.0,
            "threshold": self.threshold,
        }


class SnapshotStore:
    """Single-writer, many-reader epoch store with buffer recycling.

    The drive thread is the only publisher; queries read concurrently.
    ``publish`` stamps the snapshot with the next epoch and swaps it in
    under the condition lock (readers holding the previous snapshot are
    unaffected — snapshots are immutable).  ``wait_for`` blocks until a
    target epoch is visible, giving tests and the ``wait`` query op a
    race-free ordering primitive.

    Buffer recycling: ``take_buffer`` hands the publisher a previously
    retired :class:`SlotArrays` arena when one is available, and a
    weakref finalizer returns each snapshot's arena to the free list
    when the snapshot is garbage-collected — bounded double buffering
    without reference counting in the query path.
    """

    def __init__(self, max_buffers: int = 2) -> None:
        self._cond = threading.Condition()
        self._latest: Optional[SampleSnapshot] = None
        self._epoch = 0
        self._free: List[SlotArrays] = []
        self._max_buffers = max_buffers

    @property
    def epoch(self) -> int:
        with self._cond:
            return self._epoch

    def take_buffer(self) -> Optional[SlotArrays]:
        """A retired arena for the next capture, when one is free."""
        with self._cond:
            return self._free.pop() if self._free else None

    def _recycle(self, arrays: SlotArrays) -> None:
        with self._cond:
            if len(self._free) < self._max_buffers:
                self._free.append(arrays)

    def publish(self, snapshot: SampleSnapshot) -> int:
        """Make ``snapshot`` the latest view; returns its epoch."""
        with self._cond:
            self._epoch += 1
            snapshot.epoch = self._epoch
            self._latest = snapshot
            weakref.finalize(snapshot, self._recycle, snapshot.arrays)
            self._cond.notify_all()
            return self._epoch

    def latest(self) -> Optional[SampleSnapshot]:
        with self._cond:
            return self._latest

    def wait_for(
        self, epoch: int, timeout: Optional[float] = None
    ) -> Optional[SampleSnapshot]:
        """Block until epoch ≥ ``epoch`` is published; latest or None."""
        with self._cond:
            if self._cond.wait_for(
                lambda: self._epoch >= epoch, timeout=timeout
            ):
                return self._latest
            return None


__all__ = ["SampleSnapshot", "SnapshotStore"]
