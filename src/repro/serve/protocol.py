"""JSON-lines query protocol over stdin/stdout or TCP.

One request per line, one response per line, both JSON objects::

    {"op": "estimates"}
    {"ok": true, "op": "estimates", "epoch": 12, "stream_position": 196608,
     "sample_size": 1000, "threshold": 0.0051, "estimates": {...}}

The protocol layer is a thin shim: every op is dispatched to
:meth:`repro.serve.service.SamplingService.query`, which never raises
for malformed requests — transport errors aside, a client always gets
a JSON answer with an ``ok`` flag.  ``drain`` and ``shutdown`` answer
after the service has stopped, then end the session.
"""

from __future__ import annotations

import json
import socketserver
from typing import Any, Callable, Dict, Iterable, Optional

from repro.serve.service import SamplingService

#: Ops that terminate the protocol session after answering.
_TERMINAL_OPS = frozenset({"drain", "shutdown"})


def handle_line(service: SamplingService, line: str) -> Dict[str, Any]:
    """Answer one protocol line (parse errors become error responses)."""
    text = line.strip()
    if not text:
        return {"ok": False, "error": "empty request line"}
    try:
        request = json.loads(text)
    except ValueError as exc:
        return {"ok": False, "error": f"bad JSON: {exc}"}
    return service.query(request)


def serve_lines(
    service: SamplingService,
    lines: Iterable[str],
    write: Callable[[str], Any],
) -> int:
    """Drive the protocol over any line transport; returns lines served.

    Stops after a terminal op (``drain`` / ``shutdown``) or when the
    input ends; the caller owns starting/stopping the service.
    """
    served = 0
    for line in lines:
        if line.strip() == "":
            continue
        response = handle_line(service, line)
        write(json.dumps(response) + "\n")
        served += 1
        if response.get("op") in _TERMINAL_OPS:
            # The client asked the session to end; a drain that
            # *failed* (worker error surfaced at join) ends it too —
            # looping until EOF would strand the client on a dead
            # service.  The CLI re-raises the failure as a non-zero
            # exit with a final fatal line.
            break
    return served


def serve_stdio(service: SamplingService) -> int:
    """The ``python -m repro serve`` session: stdin in, stdout out."""
    import sys

    def write(text: str) -> None:
        sys.stdout.write(text)
        sys.stdout.flush()

    return serve_lines(service, sys.stdin, write)


class _ProtocolHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP test
        service = self.server.service  # type: ignore[attr-defined]
        lines = (raw.decode("utf-8") for raw in self.rfile)
        serve_lines(
            service,
            lines,
            lambda text: self.wfile.write(text.encode("utf-8")),
        )
        if not service.running:
            self.server.shutdown_requested = True  # type: ignore[attr-defined]


class ProtocolServer(socketserver.ThreadingTCPServer):
    """TCP front end: each connection runs the JSON-lines protocol."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: SamplingService) -> None:
        super().__init__(address, _ProtocolHandler)
        self.service = service
        self.shutdown_requested = False


def serve_tcp(
    service: SamplingService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Callable[[str, int], Any]] = None,
) -> None:
    """Serve queries over TCP until a client drains/shuts the service.

    ``port=0`` binds an ephemeral port; ``ready(host, port)`` is called
    with the bound address before the accept loop starts (the CLI
    prints it, tests connect to it).
    """
    import threading

    with ProtocolServer((host, port), service) as server:
        bound_host, bound_port = server.server_address[:2]
        if ready is not None:
            ready(bound_host, bound_port)
        poller = threading.Thread(target=server.serve_forever, daemon=True)
        poller.start()
        try:
            while not server.shutdown_requested and poller.is_alive():
                poller.join(0.1)
        finally:
            server.shutdown()
            poller.join(1.0)


__all__ = [
    "handle_line",
    "serve_lines",
    "serve_stdio",
    "serve_tcp",
    "ProtocolServer",
]
