"""Declarative serving specifications: services are data, not code.

A :class:`ServeSpec` freezes everything that determines one live
sampling service — edge source, method/budget/weight from the
:mod:`repro.api` registry, seeds, ingestion chunking, queue bound and
snapshot cadence — into a hashable value object with a lossless JSON
round trip, exactly like :class:`repro.api.RunSpec` does for batch
experiments.  A spec can therefore be stored next to a deployment,
diffed between service generations, and replayed: the same spec over
the same finite source produces bit-identical final estimates to a
batch ``run()`` over that stream.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional

from repro.streams.chunks import DEFAULT_CHUNK_SIZE

#: Reserved source name for the seeded synthetic edge generator (the
#: steady-state uniform stream of the sustained-load benchmark).
SYNTHETIC_SOURCE = "synthetic"

#: URL scheme prefix selecting the socket line-protocol source.
TCP_PREFIX = "tcp://"


@dataclass(frozen=True)
class ServeSpec:
    """One declarative live sampling service.

    Attributes
    ----------
    source:
        Where edges come from: a dataset-registry name or edge-list
        file path (finite, optionally ``follow``-tailed), the reserved
        name ``"synthetic"`` (seeded uniform generator over ``nodes``
        labels), or ``"tcp://host:port"`` (line-protocol socket).
    method:
        Registered method name.  The service needs the compact-core
        snapshot surface, so the GPS family applies: ``"gps"`` /
        ``"gps-in-stream"`` answer global estimates in O(1) from the
        fused in-stream state; ``"gps-post"`` keeps ingestion on the
        vectorised admission gate and answers retrospectively from the
        published snapshot.
    budget:
        Reservoir capacity (the paper's memory budget).
    weight:
        Registered weight name, or ``None`` for the method default.
    stream_seed:
        Seeded arrival permutation for finite resolved sources
        (``None`` streams file/dataset order); seeds the generator for
        ``"synthetic"``.  Ignored by socket sources (arrival order is
        the wire order).
    sampler_seed:
        Seed of the sampler's admission randomness.
    chunk_size:
        Columnar ingestion block size (edges per chunk).
    queue_chunks:
        Bound of the ingestion queue, in blocks.  When the drive falls
        behind, the pump thread blocks here — backpressure — and the
        stall is counted on :class:`~repro.serve.service.SamplingService`.
    snapshot_every:
        Publish a fresh immutable snapshot every N ingested blocks.
        ``1`` (default) publishes at every chunk boundary; larger
        values trade query freshness for a little ingestion headroom.
    max_edges:
        Stop ingesting after this many edges (``None`` = unbounded /
        source length).  The synthetic source is unbounded without it.
    nodes:
        Node-label population of the synthetic generator.
    follow:
        Tail a file source: after the current end-of-file, poll for
        appended edges instead of draining (``tail -f`` semantics).
    poll_interval:
        Seconds between polls while following a file and while
        draining queues on shutdown.
    source_retries:
        Supervised restarts per failure burst: a socket source
        reconnects up to this many consecutive times, and a pump-thread
        ingestion error restarts the stream from the recorded position
        up to this many consecutive times, before the service degrades
        to a surfaced error.  Any delivered progress resets the burst
        counter.  ``0`` (default) keeps the old fail-fast behaviour.
    retry_backoff:
        Base delay (seconds) of the capped exponential backoff between
        retries; jitter is drawn from a seeded RNG, never OS entropy.
    retry_backoff_cap:
        Ceiling (seconds) of the backoff growth.
    """

    source: str
    method: str = "gps"
    budget: int = 1000
    weight: Optional[str] = None
    stream_seed: Optional[int] = 0
    sampler_seed: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    queue_chunks: int = 8
    snapshot_every: int = 1
    max_edges: Optional[int] = None
    nodes: int = 10_000
    follow: bool = False
    poll_interval: float = 0.05
    source_retries: int = 0
    retry_backoff: float = 0.05
    retry_backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if not self.source:
            raise ValueError("source must be non-empty")
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.queue_chunks <= 0:
            raise ValueError("queue_chunks must be positive")
        if self.snapshot_every <= 0:
            raise ValueError("snapshot_every must be positive")
        if self.max_edges is not None and self.max_edges <= 0:
            raise ValueError("max_edges must be positive (or None)")
        if self.nodes < 2:
            raise ValueError("nodes must be at least 2")
        if self.poll_interval <= 0.0:
            raise ValueError("poll_interval must be positive")
        if self.source_retries < 0:
            raise ValueError("source_retries must be non-negative")
        if self.retry_backoff <= 0.0:
            raise ValueError("retry_backoff must be positive")
        if self.retry_backoff_cap < self.retry_backoff:
            raise ValueError(
                "retry_backoff_cap must be >= retry_backoff"
            )
        if self.follow and (
            self.source == SYNTHETIC_SOURCE
            or self.source.startswith(TCP_PREFIX)
        ):
            raise ValueError(
                "follow applies to file sources only (synthetic and "
                "tcp:// sources are already live)"
            )

    # ------------------------------------------------------------------
    # Serialization (lossless JSON round trip, like RunSpec)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeSpec":
        known = {f.name for f in fields(cls)}
        unknown = [key for key in data if key not in known]
        if unknown:
            raise ValueError(
                f"unknown ServeSpec fields: {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "ServeSpec":
        return cls.from_dict(json.loads(text))

    def replace(self, **changes: Any) -> "ServeSpec":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)


__all__ = ["ServeSpec", "SYNTHETIC_SOURCE", "TCP_PREFIX"]
