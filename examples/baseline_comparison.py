"""Compare GPS against the paper's baselines at equal memory (Table 2 style).

Runs GPS (post- and in-stream), TRIEST, TRIEST-IMPR, MASCOT, NSAMP and
JSP on the same streams with the same memory budget and reports each
method's error and per-edge update cost.

Run:  python examples/baseline_comparison.py [--budget 1500] [--runs 3]
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.experiments.runner import run_baseline
from repro.graph.exact import compute_statistics
from repro.graph.generators import chung_lu
from repro.stats.metrics import absolute_relative_error
from repro.stats.running import RunningMoments

METHODS = (
    "gps-in-stream",
    "gps-post",
    "triest",
    "triest-impr",
    "mascot",
    "jsp",
    "nsamp",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=6000)
    parser.add_argument("--edges", type=int, default=25000)
    parser.add_argument("--budget", type=int, default=1500)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args(argv)

    print("Building the benchmark stream (heavy-tailed Chung-Lu graph) ...")
    graph = chung_lu(args.nodes, args.edges, exponent=2.2, seed=args.seed)
    exact = compute_statistics(graph)
    print(
        f"  |K|={exact.num_edges}  triangles={exact.triangles}  "
        f"budget={args.budget} edges ({args.budget / exact.num_edges:.1%})\n"
    )

    print(
        f"{'method':>14}  {'mean estimate':>14}  {'ARE of mean':>12}  "
        f"{'rel σ':>8}  {'µs/edge':>8}"
    )
    for method in METHODS:
        estimates = RunningMoments()
        times = RunningMoments()
        for run in range(args.runs):
            result = run_baseline(
                method,
                graph,
                exact,
                budget=args.budget,
                stream_seed=args.seed + run,
                seed=args.seed + 100 + run,
            )
            estimates.add(result.estimate)
            times.add(result.update_time_us)
        are = absolute_relative_error(estimates.mean, exact.triangles)
        rel_sigma = estimates.std / exact.triangles
        print(
            f"{method:>14}  {estimates.mean:>14.0f}  {are:>12.2%}  "
            f"{rel_sigma:>8.3f}  {times.mean:>8.2f}"
        )

    print(
        "\nExpected shape (paper Table 2): GPS variants lead on accuracy;\n"
        "NSAMP pays a large per-edge cost because every arrival touches all\n"
        "of its estimator instances."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
