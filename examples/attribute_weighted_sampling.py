"""Attribute-weighted sampling: auxiliary variables steer the sample (S3).

Scenario from the paper's property S3: edges carry intrinsic auxiliary
variables (user attributes, relationship types, bytes on a link...), and
the analyst cares about a *subpopulation* — here, interactions inside a
"premium" community.  GPS accepts any positive weight function, so we
upweight premium-premium edges and estimate:

* the number of premium-premium edges, via the HT edge estimator;
* triangle counts restricted to the premium community, via the product
  estimator over the reservoir;

both from one sample, and show the attribute weighting cuts the error of
the premium queries compared to uniform sampling at equal memory.

Run:  python examples/attribute_weighted_sampling.py [--capacity 1200]
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro import EdgeStream, GraphPrioritySampler
from repro.core.weights import AttributeWeight, UniformWeight
from repro.graph.exact import triangle_count
from repro.graph.generators import stochastic_block_model
from repro.stats.running import RunningMoments

PREMIUM_BLOCK = 0
BLOCK_SIZE = 250


def is_premium(node: int) -> bool:
    return node < BLOCK_SIZE


def premium_weight(u: int, v: int) -> float:
    """Intrinsic attribute weight: premium-premium edges count 25x."""
    return 25.0 if is_premium(u) and is_premium(v) else 1.0


def premium_queries(sampler: GraphPrioritySampler) -> tuple:
    """HT estimates of premium-premium edge and triangle counts."""
    threshold = sampler.threshold
    edge_total = 0.0
    for record in sampler.records():
        if is_premium(record.u) and is_premium(record.v):
            edge_total += 1.0 / record.inclusion_probability(threshold)
    tri_total = 0.0
    sample = sampler.sample
    for record in sampler.records():
        if not (is_premium(record.u) and is_premium(record.v)):
            continue
        inv = 1.0 / record.inclusion_probability(threshold)
        for w, rec1, rec2 in sample.triangles_with(record.u, record.v):
            if is_premium(w):
                tri_total += (
                    inv
                    / rec1.inclusion_probability(threshold)
                    / rec2.inclusion_probability(threshold)
                )
    return edge_total, tri_total / 3.0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--capacity", type=int, default=1200)
    parser.add_argument("--runs", type=int, default=15)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args(argv)

    print("Building a 4-community interaction graph; block 0 is 'premium' ...")
    graph = stochastic_block_model(
        [BLOCK_SIZE] * 4, p_in=0.08, p_out=0.01, seed=args.seed
    )
    premium_nodes = [v for v in graph.nodes() if is_premium(v)]
    premium_graph = graph.subgraph(premium_nodes)
    true_edges = premium_graph.num_edges
    true_triangles = triangle_count(premium_graph)
    print(
        f"  |K|={graph.num_edges}; premium-premium edges={true_edges}, "
        f"premium triangles={true_triangles}\n"
    )

    weights = {
        "uniform": lambda: UniformWeight(),
        "attribute-weighted": lambda: AttributeWeight(premium_weight),
    }
    print(
        f"{'sampling':>20}  {'edge ARE':>9}  {'tri ARE':>9}  "
        f"{'premium edges in sample':>24}"
    )
    for name, factory in weights.items():
        edge_err = RunningMoments()
        tri_err = RunningMoments()
        premium_kept = RunningMoments()
        for run in range(args.runs):
            sampler = GraphPrioritySampler(
                capacity=args.capacity, weight_fn=factory(), seed=args.seed + run
            )
            sampler.process_stream(
                EdgeStream.from_graph(graph, seed=args.seed + 100 + run)
            )
            edges_est, tri_est = premium_queries(sampler)
            edge_err.add(abs(edges_est - true_edges) / true_edges)
            tri_err.add(abs(tri_est - true_triangles) / max(1, true_triangles))
            premium_kept.add(
                sum(
                    1
                    for r in sampler.records()
                    if is_premium(r.u) and is_premium(r.v)
                )
            )
        print(
            f"{name:>20}  {edge_err.mean:>9.2%}  {tri_err.mean:>9.2%}  "
            f"{premium_kept.mean:>24.0f}"
        )

    print(
        "\nThe attribute weighting devotes the reservoir to the "
        "subpopulation of\ninterest (more premium edges retained), while "
        "Horvitz-Thompson\nnormalisation keeps every estimate unbiased."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
