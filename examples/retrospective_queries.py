"""Retrospective graph queries from one GPS reference sample (paper Sec. 1, 3).

Scenario: an operations team keeps a single compact "reference sample" of
a massive edge stream.  Weeks later, analysts ask questions that were not
anticipated when the sample was collected: triangle counts, wedge counts,
clustering, 4-clique counts, 3-star counts.  Because GPS separates
sampling from estimation, all of these are answered *post hoc* from the
same reservoir with unbiased Horvitz-Thompson estimators.

Run:  python examples/retrospective_queries.py [--capacity 3000]
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro import (
    CliqueEstimator,
    EdgeStream,
    GraphPrioritySampler,
    PostStreamEstimator,
    StarEstimator,
    compute_statistics,
)
from repro.core.subgraphs import SampledClique
from repro.graph.generators import powerlaw_cluster


def count_cliques_exact(graph, size: int) -> int:
    """Exact clique count for the comparison column (small graphs only)."""
    from repro.core.priority_sampler import GraphPrioritySampler as _Sampler

    sampler = _Sampler(capacity=graph.num_edges + 1, seed=0)
    sampler.process_stream(graph.edges())
    return round(CliqueEstimator(sampler, size=size).estimate().value)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2500)
    parser.add_argument("--capacity", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    print("Collecting the reference sample ...")
    graph = powerlaw_cluster(args.nodes, 5, 0.6, seed=args.seed)
    exact = compute_statistics(graph)
    sampler = GraphPrioritySampler(capacity=args.capacity, seed=args.seed + 1)
    sampler.process_stream(EdgeStream.from_graph(graph, seed=args.seed))
    print(
        f"  stream length {exact.num_edges}, reservoir {sampler.sample_size} edges, "
        f"threshold z*={sampler.threshold:.3f}"
    )

    print("\nAnswering retrospective queries from the sample:\n")
    alg2 = PostStreamEstimator(sampler).estimate()
    four_cliques = CliqueEstimator(sampler, size=4).estimate()
    three_stars = StarEstimator(sampler, leaves=3).estimate()

    queries = [
        ("triangles", alg2.triangles.value, float(exact.triangles)),
        ("wedges", alg2.wedges.value, float(exact.wedges)),
        ("global clustering", alg2.clustering.value, exact.clustering),
        ("4-cliques", four_cliques.value, float(count_cliques_exact(graph, 4))),
        (
            "3-stars",
            three_stars.value,
            float(
                sum(
                    d * (d - 1) * (d - 2) // 6
                    for d in (graph.degree(v) for v in graph.nodes())
                )
            ),
        ),
    ]
    print(f"{'query':>18}  {'estimate':>14}  {'actual':>14}  {'ARE':>8}")
    for name, estimate, actual in queries:
        err = abs(estimate - actual) / actual if actual else 0.0
        print(f"{name:>18}  {estimate:>14.1f}  {actual:>14.1f}  {err:>8.2%}")

    print(
        "\nAll five answers come from one reservoir collected in a single "
        "pass —\nno re-streaming, no per-query sampling schemes."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
