"""Real-time tracking of an evolving interaction network (paper Figure 3).

Scenario: a social-media platform wants a live dashboard of triangle count
and clustering coefficient over its interaction stream, using a few
thousand edges of memory regardless of stream length.  GPS in-stream
estimation updates in O(1) amortised per query, so the dashboard can be
refreshed at every checkpoint.

The script prints an ASCII chart of estimate vs actual as the stream
progresses.

Run:  python examples/realtime_tracking.py [--capacity 3000]
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro import EdgeStream, ExactStreamCounter, InStreamEstimator
from repro.graph.generators import chung_lu


def bar(value: float, scale: float, width: int = 42) -> str:
    filled = 0 if scale <= 0 else int(round(width * value / scale))
    return "#" * max(0, min(width, filled))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8000)
    parser.add_argument("--edges", type=int, default=40000)
    parser.add_argument("--capacity", type=int, default=5000)
    parser.add_argument("--checkpoints", type=int, default=12)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args(argv)

    print("Simulating an interaction stream (heavy-tailed Chung-Lu graph) ...")
    graph = chung_lu(args.nodes, args.edges, exponent=2.2, seed=args.seed)
    stream = EdgeStream.from_graph(graph, seed=args.seed)
    marks = set(stream.checkpoints(args.checkpoints))

    estimator = InStreamEstimator(capacity=args.capacity, seed=args.seed + 1)
    exact = ExactStreamCounter()

    rows = []
    t = 0
    for u, v in stream:
        estimator.process(u, v)
        exact.process(u, v)
        t += 1
        if t in marks:
            rows.append((t, exact.triangles, estimator.estimates()))

    scale = max(exact.triangles, 1)
    print(
        f"\nTriangle tracking with m={args.capacity} "
        f"({args.capacity / len(stream):.1%} of the stream)\n"
    )
    print(f"{'t':>8}  {'actual':>10}  {'estimate':>10}  {'ARE':>7}  chart")
    for t, actual, estimates in rows:
        est = estimates.triangles
        err = est.relative_error(actual) if actual else 0.0
        print(
            f"{t:>8}  {actual:>10}  {est.value:>10.0f}  {err:>7.2%}  "
            f"|{bar(est.value, scale)}"
        )
    final = rows[-1][2]
    lb, ub = final.triangles.confidence_bounds()
    print(
        f"\nfinal estimate {final.triangles.value:.0f} "
        f"(actual {exact.triangles}), 95% CI [{lb:.0f}, {ub:.0f}]"
    )
    print(
        f"clustering: estimate {final.clustering.value:.4f} "
        f"vs actual {exact.clustering:.4f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
