"""Motif census: estimate all connected 4-node motifs from one GPS sample.

Scenario: a graph-mining team wants the higher-order structure of a
massive stream — 4-cliques, diamonds, 4-cycles, tailed triangles, paths
and stars — without storing the graph.  GPS's estimator/sampler separation
means the *same* reservoir collected for triangle counting answers the
entire census retrospectively, each motif with an unbiased
Horvitz-Thompson product estimator (paper Theorem 2 applied to 4-node
edge subsets).

Also demonstrates the in-stream 4-clique snapshot counter (paper Sec. 5's
"triangle or other clique" remark) and local triangle heavy-hitters.

Run:  python examples/motif_census.py [--capacity 2500]
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro import EdgeStream, GraphPrioritySampler
from repro.core.local import LocalTriangleEstimator
from repro.core.motifs import MotifCensusEstimator
from repro.core.snapshot_counters import InStreamCliqueCounter
from repro.graph.exact import per_node_triangles
from repro.graph.generators import powerlaw_cluster
from repro.graph.motifs import count_motifs


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1500)
    parser.add_argument("--capacity", type=int, default=2500)
    parser.add_argument("--seed", type=int, default=19)
    args = parser.parse_args(argv)

    print("Building a clustered power-law graph ...")
    graph = powerlaw_cluster(args.nodes, 5, 0.7, seed=args.seed)
    exact = count_motifs(graph)
    print(f"  |K|={graph.num_edges}; exact 4-node motif counts computed.\n")

    stream = EdgeStream.from_graph(graph, seed=args.seed)
    sampler = GraphPrioritySampler(capacity=args.capacity, seed=args.seed + 1)
    sampler.process_stream(stream)
    census = MotifCensusEstimator(sampler).estimate()

    print(f"Post-stream census from one {sampler.sample_size}-edge sample "
          f"({sampler.sample_size / graph.num_edges:.1%} of the stream):\n")
    print(f"{'motif':>16}  {'estimate':>12}  {'actual':>10}  {'ARE':>8}")
    for name, estimate in census.items():
        actual = getattr(exact, name)
        err = abs(estimate.value - actual) / actual if actual else 0.0
        print(f"{name:>16}  {estimate.value:>12.1f}  {actual:>10}  {err:>8.2%}")

    print("\nIn-stream 4-clique snapshot counter (same capacity, own pass):")
    counter = InStreamCliqueCounter(
        capacity=args.capacity, size=4, seed=args.seed + 2
    )
    counter.process_stream(EdgeStream.from_graph(graph, seed=args.seed))
    err = (
        abs(counter.clique_estimate - exact.clique4) / exact.clique4
        if exact.clique4
        else 0.0
    )
    print(
        f"  estimate {counter.clique_estimate:.1f} vs actual {exact.clique4} "
        f"(ARE {err:.2%}, {counter.snapshots_taken} snapshots)"
    )

    print("\nLocal triangle heavy-hitters (estimate vs exact):")
    exact_local = per_node_triangles(graph)
    for node, estimate in LocalTriangleEstimator(sampler).top_nodes(5):
        print(f"  node {node:>5}: estimated {estimate:8.1f}   exact {exact_local[node]:6d}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
