"""Quickstart: sample a graph stream with GPS and estimate triangle counts.

This walks the core loop of the paper end to end:

1. build a graph (here: a synthetic social network),
2. stream its edges in random order,
3. maintain a GPS reservoir of ``m`` edges with the triangle-optimal
   weight function ``W(k, K̂) = 9·|△̂(k)| + 1``,
4. read unbiased triangle / wedge / clustering estimates with 95%
   confidence bounds — both in-stream (Algorithm 3) and post-stream
   (Algorithm 2) from the very same sample,
5. compare against the exact counts.

Run:  python examples/quickstart.py [--capacity 4000] [--nodes 4000]
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro import (
    EdgeStream,
    InStreamEstimator,
    PostStreamEstimator,
    compute_statistics,
)
from repro.graph.generators import powerlaw_cluster


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4000)
    parser.add_argument("--capacity", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    print(f"Building a synthetic social network ({args.nodes} nodes) ...")
    graph = powerlaw_cluster(args.nodes, 5, 0.5, seed=args.seed)
    exact = compute_statistics(graph)
    print(
        f"  |V|={exact.num_nodes}  |K|={exact.num_edges}  "
        f"triangles={exact.triangles}  wedges={exact.wedges}  "
        f"clustering={exact.clustering:.4f}"
    )

    print(f"\nStreaming edges through GPS(m={args.capacity}) ...")
    stream = EdgeStream.from_graph(graph, seed=args.seed)
    estimator = InStreamEstimator(capacity=args.capacity, seed=args.seed + 1)
    estimator.process_stream(stream)

    in_stream = estimator.estimates()
    post_stream = PostStreamEstimator(estimator.sampler).estimate()
    fraction = in_stream.sample_size / exact.num_edges
    print(f"  stored {in_stream.sample_size} edges ({fraction:.1%} of the stream)")

    def describe(label: str, estimate, actual: float) -> None:
        lb, ub = estimate.confidence_bounds()
        print(
            f"  {label:22s} estimate={estimate.value:12.5g}  actual={actual:12.5g}"
            f"  ARE={estimate.relative_error(actual):6.2%}  95% CI=[{lb:.5g}, {ub:.5g}]"
        )

    print("\nIn-stream estimation (Algorithm 3):")
    describe("triangles", in_stream.triangles, exact.triangles)
    describe("wedges", in_stream.wedges, exact.wedges)
    describe("clustering coeff.", in_stream.clustering, exact.clustering)

    print("\nPost-stream estimation (Algorithm 2, same sample):")
    describe("triangles", post_stream.triangles, exact.triangles)
    describe("wedges", post_stream.wedges, exact.wedges)
    describe("clustering coeff.", post_stream.clustering, exact.clustering)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
