"""Quickstart for the declarative ``repro.api`` experiment layer.

Experiments are *data*: a frozen :class:`~repro.api.spec.RunSpec` that
round-trips through JSON, resolved by a single interpreter
(``repro.api.run``).  This script walks all three execution modes on one
synthetic graph:

1. a single engine-driven GPS pass (estimates + 95% bounds),
2. a budget-matched baseline pass picked from the method registry,
3. a replicated pass — *any* registered method fanned over the process
   pool — reporting mean / std / 95% CI per metric,

and finally shows the JSON round trip that lets specs live in config
files and reports feed downstream tooling.

Run:  python examples/declarative_experiment.py [--budget 2000] [--nodes 2000]
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from repro.api import RunSpec, method_names, run
from repro.graph.exact import compute_statistics
from repro.graph.generators import powerlaw_cluster


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--budget", type=int, default=2000)
    parser.add_argument("--method", default="triest-impr",
                        help="baseline to compare and replicate")
    parser.add_argument("--replications", type=int, default=6)
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 runs inline)")
    args = parser.parse_args(argv)

    graph = powerlaw_cluster(args.nodes, 5, 0.5, seed=7)
    exact = compute_statistics(graph)
    print(f"registered methods: {', '.join(method_names())}")
    print(f"ground truth: {exact.triangles} triangles on {exact.num_edges} edges\n")

    # --- 1. single GPS pass: the spec is plain data -------------------
    gps_spec = RunSpec(source="<in-memory>", method="gps", budget=args.budget,
                       stream_seed=0, sampler_seed=1)
    report = run(gps_spec, graph=graph)
    tri = report.in_stream.triangles
    lb, ub = tri.confidence_bounds()
    print("single GPS pass")
    print(f"  spec            {gps_spec.to_json()}")
    print(f"  triangles       {tri.value:.1f}  95% CI [{lb:.1f}, {ub:.1f}]")
    print(f"  throughput      {report.edges_per_second:,.0f} edges/s\n")

    # --- 2. a budget-matched baseline through the same interpreter ----
    base_report = run(gps_spec.replace(method=args.method), graph=graph)
    print(f"baseline pass ({args.method})")
    print(f"  triangles       {base_report.estimates['triangles']:.1f} "
          f"(actual {exact.triangles})\n")

    # --- 3. replicated error bars for any registered method -----------
    replicated = run(
        gps_spec.replace(method=args.method,
                         replications=args.replications,
                         workers=args.workers),
        graph=graph,
    )
    stats = replicated.metrics["triangles"]
    print(f"replicated {args.method} (R={replicated.replications}, "
          f"workers={replicated.workers})")
    print(f"  mean triangles  {stats.mean:.1f}  std {stats.variance ** 0.5:.1f}  "
          f"95% CI [{stats.ci_low:.1f}, {stats.ci_high:.1f}]\n")

    # --- JSON round trips: specs and reports are machine-readable -----
    payload = json.loads(replicated.to_json())
    restored = RunSpec.from_dict(payload["spec"])
    assert restored == replicated.spec
    print("report JSON keys:", ", ".join(sorted(payload)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
